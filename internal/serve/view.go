// Package serve is the live query-serving layer: it ingests closed
// ledger pages and validation events as they happen — from a
// netstream.ResilientClient subscription, a ledgerstore backfill, or
// both — incrementally maintains the materialized views behind the
// paper's figures (per-validator tallies for Fig. 2, the fingerprint
// count tables for Fig. 3 and sender-uniqueness lookups, the ecosystem
// histograms for Figs. 4–6), and answers queries from immutable epoch
// snapshots over an HTTP JSON API (cmd/ripple-serve).
//
// Concurrency model: every view is a pipeline of PipelineWorkers apply
// goroutines, each owning a private shard of the view's mutable state
// and fed over its own bounded ring (single-writer principle per shard
// — no locks on the hot path). With one worker the pipeline degenerates
// to the classic single-writer view: one goroutine, one inbox, applies
// and publishes in the same loop. With more, ingest routes update
// batches across the rings (by content where shard affinity matters —
// the tally view keys on ledger hash so a page's validations and its
// close land on the same shard — round-robin otherwise), and a sealer
// goroutine periodically pauses the workers at a barrier, merges the
// shards into one immutable snapshot, publishes it, and releases them.
// Merges are deterministic (every view statistic is an
// order-insensitive sum or union), so any routing yields snapshots
// bit-identical to the sequential fold — the property the differential
// tests pin.
//
// Ingest projects each page once at the front door (project.go) into an
// owned record and fans the record out in batches, so queue operations,
// channel wakeups, and bookkeeping amortize over IngestBatchPages
// updates instead of one. Readers never touch mutable state: each
// publish seals an immutable copy-on-publish snapshot behind an atomic
// pointer and bumps the view's epoch, so queries never block ingestion
// and ingestion never blocks queries. Publishes happen whenever a
// view's rings run dry (fresh epochs under light load) and at least
// every PublishBatch updates (amortized snapshot cost under heavy load)
// — but never in the middle of an ingest batch, so a snapshot always
// covers whole batches.
package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"ripplestudy/internal/consensus"
)

// update is one unit of ingest work fanned out to the views: a stream
// event (validation or ledger close) for the tally view, or a projected
// page record for the page views. seq and streamSeq carry the ledger
// and stream sequence bookkeeping so workers never re-inspect payloads.
// The event rides behind a pointer: a consensus.Event is ~200 bytes, and
// page updates (the firehose path) never carry one, so keeping it inline
// would make every pooled batch slab 7× larger to copy and GC-scan.
type update struct {
	ev        *consensus.Event // tally view only
	rec       *pageRecord      // page views only
	seq       uint64
	streamSeq uint64
}

// batchPool recycles the []update batches flowing through the view
// inboxes: producers take, consumers (or failed offers) return.
var batchPool = sync.Pool{New: func() any {
	s := make([]update, 0, defaultIngestBatch)
	return &s
}}

func getUpdateBatch() []update {
	return (*batchPool.Get().(*[]update))[:0]
}

func putUpdateBatch(b []update) {
	for i := range b {
		b[i] = update{} // drop event payload / record references
	}
	b = b[:0]
	batchPool.Put(&b)
}

// sealGrace is how long a view waits on dry rings before paying for a
// publish. Under sustained ingest the producer refills the rings well
// inside the grace window, so snapshots coalesce to PublishBatch
// boundaries instead of sealing once per scheduler pass; on a genuinely
// idle stream the epoch is still fresh within half a millisecond.
const sealGrace = 500 * time.Microsecond

// viewConfig describes one materialized view's pipeline.
type viewConfig struct {
	name string
	// workers is the apply fan-out: the number of state shards, rings,
	// and goroutines. 1 is the single-writer baseline.
	workers int
	// queue is the view's total ring budget in batches, split evenly
	// across the workers' rings.
	queue int
	// batch is the most applied updates between publishes under load.
	batch int
	// block selects backpressure (true) or drop-and-count (false) when
	// a ring is full.
	block bool
	// apply folds one update into the given shard's private state. Shard
	// i is only ever touched by worker i (or by publish, under barrier).
	apply func(shard int, u update)
	// route (optional) picks the shard for an update when affinity
	// matters; the worker reduces it modulo workers. nil routes whole
	// batches round-robin — correct for any view whose shards partition
	// arbitrarily. In routed mode offerBatch owns all cleanup (see
	// offerBatch).
	route func(u *update) uint64
	// publish merges the shards (workers>1: called with every worker
	// paused at the seal barrier, so it may read all shard state) and
	// stores the immutable epoch snapshot.
	publish func(epoch uint64)
	// notify (optional) fires after every seal and drop; Drain waiters
	// key off it.
	notify func()
	// sealDue (optional) gates batch-boundary seals for views whose
	// publish cost grows with state size; ring-dry and shutdown seals
	// bypass it.
	sealDue func() bool
}

// viewWorker is the pipeline machinery shared by all views: bounded
// per-shard rings drained by apply goroutines, plus (at workers>1) a
// sealer goroutine that barriers the workers and publishes merged
// immutable snapshots.
type viewWorker struct {
	name    string
	ins     []chan []update // one ring per shard/worker
	apply   func(shard int, u update)
	route   func(u *update) uint64
	publish func(epoch uint64)
	notify  func()
	sealDue func() bool
	batch   int
	block   bool

	epoch      atomic.Uint64
	offered    atomic.Uint64
	applied    atomic.Uint64
	dropped    atomic.Uint64
	sealed     atomic.Uint64 // applied updates covered by the latest publish
	appliedSeq atomic.Uint64 // highest ledger sequence applied
	streamSeq  atomic.Uint64 // highest stream sequence applied
	seals      atomic.Uint64 // publishes since start (excluding bootstrap)
	sealNanos  atomic.Int64  // duration of the latest seal (barrier + merge at workers>1)
	mergeNanos atomic.Int64  // duration of the latest merge+publish alone

	rr atomic.Uint64 // round-robin ring cursor for unrouted batches

	// Single-worker machinery.
	done chan struct{}

	// Multi-worker machinery: the sealer pauses worker i by sending a
	// release channel over barriers[i]; the worker acks on acks and
	// blocks until the release channel closes. progress (capacity 1,
	// non-blocking send) wakes the sealer after applied batches; one
	// buffered token is enough — the sealer re-reads the counters on
	// every wake, so a coalesced signal never loses a state change.
	barriers   []chan chan struct{}
	acks       chan struct{}
	progress   chan struct{}
	stopSeal   chan struct{}
	sealerDone chan struct{}
	applyWG    sync.WaitGroup
}

// newViewWorker starts a view pipeline. publish(0) is called
// synchronously before any update so queries always find a (possibly
// empty) snapshot.
func newViewWorker(cfg viewConfig) *viewWorker {
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	if cfg.queue < cfg.workers {
		cfg.queue = cfg.workers
	}
	if cfg.batch < 1 {
		cfg.batch = 1
	}
	w := &viewWorker{
		name:    cfg.name,
		apply:   cfg.apply,
		route:   cfg.route,
		publish: cfg.publish,
		notify:  cfg.notify,
		sealDue: cfg.sealDue,
		batch:   cfg.batch,
		block:   cfg.block,
	}
	perRing := cfg.queue / cfg.workers
	w.ins = make([]chan []update, cfg.workers)
	for i := range w.ins {
		w.ins[i] = make(chan []update, perRing)
	}
	w.publish(0)
	if cfg.workers == 1 {
		w.done = make(chan struct{})
		go w.run()
		return w
	}
	w.barriers = make([]chan chan struct{}, cfg.workers)
	for i := range w.barriers {
		w.barriers[i] = make(chan chan struct{}, 1)
	}
	w.acks = make(chan struct{}, cfg.workers)
	w.progress = make(chan struct{}, 1)
	w.stopSeal = make(chan struct{})
	w.sealerDone = make(chan struct{})
	for i := 0; i < cfg.workers; i++ {
		w.applyWG.Add(1)
		go w.runShardWorker(i)
	}
	go w.runSealer()
	return w
}

// workerCount reports the apply fan-out.
func (w *viewWorker) workerCount() int { return len(w.ins) }

// shardDepths reports each ring's current occupancy in batches, for
// /metrics. Channel length reads are racy by nature; the gauges are
// instantaneous load indicators, not accounting.
func (w *viewWorker) shardDepths() []int {
	out := make([]int, len(w.ins))
	for i, in := range w.ins {
		out[i] = len(in)
	}
	return out
}

// run is the single-worker loop: apply and publish on one goroutine,
// no barriers — the baseline the multi-worker pipeline is pinned
// against.
func (w *viewWorker) run() {
	defer close(w.done)
	in := w.ins[0]
	sinceLast := 0
	seal := func() {
		if sinceLast == 0 {
			return
		}
		start := time.Now()
		w.publish(w.epoch.Add(1))
		d := int64(time.Since(start))
		w.sealNanos.Store(d)
		w.mergeNanos.Store(d)
		w.seals.Add(1)
		// Published; everything applied so far is now visible to readers.
		w.sealed.Store(w.applied.Load())
		sinceLast = 0
		if w.notify != nil {
			w.notify()
		}
	}
	grace := time.NewTimer(sealGrace)
	if !grace.Stop() {
		<-grace.C
	}
	for {
		var b []update
		var ok bool
		select {
		case b, ok = <-in:
		default:
			if sinceLast == 0 {
				// Nothing unpublished: just wait for work.
				b, ok = <-in
				break
			}
			// Inbox dry with updates pending: give the producer a grace
			// window to refill before paying for a publish. A seal is a
			// copy-on-publish snapshot (for the fingerprint view, a
			// scatter-gather clone of every dirty shard), so sealing on
			// every scheduling gap would melt a backfill into clone
			// traffic.
			grace.Reset(sealGrace)
			select {
			case b, ok = <-in:
				if !grace.Stop() {
					<-grace.C
				}
			case <-grace.C:
				seal()
				b, ok = <-in
			}
		}
		if !ok {
			// Shutdown: everything offered has been applied; seal the
			// final epoch so the last snapshot reflects the full ingest.
			seal()
			return
		}
		for i := range b {
			u := &b[i]
			w.apply(0, *u)
			if u.seq > 0 {
				w.bumpSeq(&w.appliedSeq, u.seq)
			}
			if u.streamSeq > 0 {
				w.bumpSeq(&w.streamSeq, u.streamSeq)
			}
		}
		w.applied.Add(uint64(len(b)))
		sinceLast += len(b)
		putUpdateBatch(b)
		// Seal only between batches — a snapshot never splits one — and
		// only once the view's publish-cost gate (if any) agrees.
		if sinceLast >= w.batch && (w.sealDue == nil || w.sealDue()) {
			seal()
		}
	}
}

// runShardWorker is one multi-worker apply loop: drain the shard's ring
// into its private state, nudge the sealer, and park at the barrier
// when a seal is in progress.
func (w *viewWorker) runShardWorker(i int) {
	defer w.applyWG.Done()
	in := w.ins[i]
	for {
		select {
		case release := <-w.barriers[i]:
			w.acks <- struct{}{}
			<-release
		case b, ok := <-in:
			if !ok {
				// Shutdown: the sealer is already stopped (close stops it
				// before closing the rings), so no barrier can be pending.
				return
			}
			for j := range b {
				u := &b[j]
				w.apply(i, *u)
				if u.seq > 0 {
					w.bumpSeq(&w.appliedSeq, u.seq)
				}
				if u.streamSeq > 0 {
					w.bumpSeq(&w.streamSeq, u.streamSeq)
				}
			}
			w.applied.Add(uint64(len(b)))
			putUpdateBatch(b)
			select {
			case w.progress <- struct{}{}:
			default:
			}
		}
	}
}

// runSealer decides when a multi-worker view publishes: at least every
// batch applied updates once the publish-cost gate agrees, or — gate
// bypassed — whenever the rings run dry for a sealGrace window, so idle
// epochs stay fresh and Drain always completes. Each seal is a
// stop-the-world barrier over the apply workers; the counters the
// sealer reads are exact at the barrier because every worker has acked
// (and therefore finished its in-flight batch) before the merge runs.
func (w *viewWorker) runSealer() {
	defer close(w.sealerDone)
	grace := time.NewTimer(sealGrace)
	if !grace.Stop() {
		<-grace.C
	}
	for {
		select {
		case <-w.stopSeal:
			return
		case <-w.progress:
		}
	decide:
		for {
			applied, sealed := w.applied.Load(), w.sealed.Load()
			if applied == sealed {
				break
			}
			if applied-sealed >= uint64(w.batch) && (w.sealDue == nil || w.sealDue()) {
				w.sealBarrier()
				continue
			}
			if w.lag() > 0 {
				// More work is already queued; wait for it to apply
				// rather than splitting a producer's batch train.
				break
			}
			// Rings dry with unpublished updates: grace-wait, then seal
			// if still dry (gate bypassed — the stream paused).
			grace.Reset(sealGrace)
			select {
			case <-w.stopSeal:
				if !grace.Stop() {
					<-grace.C
				}
				return
			case <-w.progress:
				if !grace.Stop() {
					<-grace.C
				}
				continue
			case <-grace.C:
				if w.lag() == 0 {
					w.sealBarrier()
					continue
				}
				break decide
			}
		}
	}
}

// sealBarrier pauses every apply worker, merges and publishes the
// shards as one epoch, and releases them. Only the sealer calls it.
func (w *viewWorker) sealBarrier() {
	start := time.Now()
	release := make(chan struct{})
	for i := range w.barriers {
		w.barriers[i] <- release
	}
	for range w.barriers {
		<-w.acks
	}
	// All workers paused: applied is exact and the shard state is
	// quiescent for the merge.
	applied := w.applied.Load()
	mergeStart := time.Now()
	w.publish(w.epoch.Add(1))
	w.mergeNanos.Store(int64(time.Since(mergeStart)))
	w.seals.Add(1)
	w.sealed.Store(applied)
	close(release)
	w.sealNanos.Store(int64(time.Since(start)))
	if w.notify != nil {
		w.notify()
	}
}

// bumpSeq raises a monotonic gauge to at least v. Apply workers race on
// it (parallel backfills and shard workers interleave segments), so the
// CAS loop keeps "highest seen" — a plain load/store pair could regress
// the gauge when two workers interleave.
func (w *viewWorker) bumpSeq(g *atomic.Uint64, v uint64) {
	for cur := g.Load(); v > cur; cur = g.Load() {
		if g.CompareAndSwap(cur, v) {
			return
		}
	}
}

// offer hands a single update to the view, as a one-element batch.
func (w *viewWorker) offer(u update) bool {
	b := getUpdateBatch()
	b = append(b, u)
	if !w.offerBatch(b) {
		if u.rec != nil {
			u.rec.unref()
		}
		putUpdateBatch(b)
		return false
	}
	return true
}

// offerBatch hands a batch of updates to the view. Blocking mode
// applies backpressure (lossless, the differential-test configuration);
// non-blocking mode drops on a full ring and counts the loss
// (load-shedding for live serving where falling behind the stream is
// worse than a coarser view).
//
// Ownership: in unrouted mode (route == nil) a true return transfers
// the slice to the view; on false the CALLER still owns the slice — and
// the records it references. In routed mode the view always takes
// ownership: the batch is split per shard, full rings shed their
// sub-batch internally (records unreferenced, drops counted and
// notified), and offerBatch always returns true.
func (w *viewWorker) offerBatch(b []update) bool {
	n := uint64(len(b))
	if n == 0 {
		putUpdateBatch(b)
		return true
	}
	w.offered.Add(n)
	if w.route == nil || len(w.ins) == 1 {
		in := w.ins[0]
		if len(w.ins) > 1 {
			// Any partition of the stream merges to the same snapshot, so
			// unrouted batches just round-robin across the rings, keeping
			// each batch intact (one ring drain applies it whole).
			in = w.ins[int(w.rr.Add(1)-1)%len(w.ins)]
		}
		if w.block {
			in <- b
			return true
		}
		select {
		case in <- b:
			return true
		default:
			w.dropped.Add(n)
			// A drop can complete a Drain target (dropped updates never
			// seal), so it must wake waiters too.
			if w.notify != nil {
				w.notify()
			}
			return false
		}
	}
	// Routed: split the batch into per-shard sub-batches so updates with
	// shard affinity (the tally view's per-ledger-hash state) land where
	// their state lives. The fast path — every update routes to the same
	// shard, always true for the one-element batches the event path
	// offers — forwards the original slice untouched.
	first := int(w.route(&b[0]) % uint64(len(w.ins)))
	split := false
	for i := 1; i < len(b); i++ {
		if int(w.route(&b[i])%uint64(len(w.ins))) != first {
			split = true
			break
		}
	}
	if !split {
		w.sendRouted(first, b)
		return true
	}
	subs := make([][]update, len(w.ins))
	for i := range b {
		sh := int(w.route(&b[i]) % uint64(len(w.ins)))
		if subs[sh] == nil {
			subs[sh] = getUpdateBatch()
		}
		subs[sh] = append(subs[sh], b[i])
	}
	putUpdateBatch(b)
	for sh, sub := range subs {
		if sub != nil {
			w.sendRouted(sh, sub)
		}
	}
	return true
}

// sendRouted delivers one routed sub-batch to its shard ring, shedding
// it internally when the ring is full in non-blocking mode.
func (w *viewWorker) sendRouted(sh int, sub []update) {
	if w.block {
		w.ins[sh] <- sub
		return
	}
	select {
	case w.ins[sh] <- sub:
	default:
		w.dropped.Add(uint64(len(sub)))
		for i := range sub {
			if sub[i].rec != nil {
				sub[i].rec.unref()
			}
		}
		putUpdateBatch(sub)
		if w.notify != nil {
			w.notify()
		}
	}
}

// lag reports updates offered but not yet applied (nor dropped) — the
// view's ingest backlog.
func (w *viewWorker) lag() uint64 {
	return w.offered.Load() - w.applied.Load() - w.dropped.Load()
}

// close drains the rings, publishes the final epoch, and stops the
// pipeline goroutines. The caller must guarantee no concurrent offer.
// Order matters at workers>1: the sealer stops first so no barrier can
// target an exited worker, then the rings close and drain, then the
// final merge runs on the caller's goroutine — every shard is quiescent
// by then.
func (w *viewWorker) close() {
	if len(w.ins) == 1 && w.done != nil {
		close(w.ins[0])
		<-w.done
		return
	}
	close(w.stopSeal)
	<-w.sealerDone
	for _, in := range w.ins {
		close(in)
	}
	w.applyWG.Wait()
	if applied := w.applied.Load(); applied != w.sealed.Load() {
		start := time.Now()
		w.publish(w.epoch.Add(1))
		d := int64(time.Since(start))
		w.mergeNanos.Store(d)
		w.sealNanos.Store(d)
		w.seals.Add(1)
		w.sealed.Store(applied)
		if w.notify != nil {
			w.notify()
		}
	}
}
