package ledgerstore

import (
	"bufio"
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
	"ripplestudy/internal/ledger"
)

// buildPage assembles a consistent page with n payment transactions.
func buildPage(seq uint64, parent ledger.Hash, n int, r *rand.Rand) *ledger.Page {
	txs := make([]*ledger.Tx, 0, n)
	metas := make([]*ledger.TxMeta, 0, n)
	for i := 0; i < n; i++ {
		kp := addr.KeyPairFromSeed(r.Uint64())
		tx := &ledger.Tx{
			Type:        ledger.TxPayment,
			Account:     kp.AccountID(),
			Sequence:    uint32(i + 1),
			Fee:         10,
			Destination: addr.KeyPairFromSeed(r.Uint64()).AccountID(),
			Amount:      amount.New(amount.USD, amount.MustValue(int64(r.Intn(10000)+1), -2)),
		}
		tx.Sign(kp)
		txs = append(txs, tx)
		metas = append(metas, &ledger.TxMeta{Result: ledger.ResultSuccess, Delivered: tx.Amount})
	}
	return &ledger.Page{
		Header: ledger.PageHeader{
			Sequence:   seq,
			ParentHash: parent,
			TxSetHash:  ledger.TxSetHash(txs),
			StateHash:  ledger.SHA512Half([]byte{byte(seq)}),
			CloseTime:  ledger.CloseTime(seq * 5),
			TotalDrops: ledger.GenesisTotalDrops,
		},
		Txs:   txs,
		Metas: metas,
	}
}

func writeStore(t *testing.T, dir string, pages int, txPerPage int, opts ...Option) []*ledger.Page {
	t.Helper()
	s, err := Create(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(42))
	var out []*ledger.Page
	parent := ledger.Hash{}
	for i := 1; i <= pages; i++ {
		p := buildPage(uint64(i), parent, txPerPage, r)
		parent = p.Header.Hash()
		if err := s.Append(p); err != nil {
			t.Fatal(err)
		}
		out = append(out, p)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := writeStore(t, dir, 10, 3)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got []*ledger.Page
	if err := s.Pages(func(p *ledger.Page) error {
		got = append(got, p)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d pages, wrote %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Header.Hash() != want[i].Header.Hash() {
			t.Errorf("page %d hash mismatch", i)
		}
		if len(got[i].Txs) != len(want[i].Txs) {
			t.Errorf("page %d: %d txs, want %d", i, len(got[i].Txs), len(want[i].Txs))
		}
	}
}

func TestStoreSegmentRollover(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force one page per segment.
	writeStore(t, dir, 5, 2, WithSegmentBytes(1))
	segs, err := segmentFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 5 {
		t.Fatalf("got %d segments, want 5", len(segs))
	}
	// Order must survive the multi-segment layout.
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	if err := s.Pages(func(p *ledger.Page) error {
		seqs = append(seqs, p.Header.Sequence)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, seq := range seqs {
		if seq != uint64(i+1) {
			t.Fatalf("page order broken: %v", seqs)
		}
	}
}

func TestStoreAppendAfterOpen(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, 3, 1)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	if err := s.Append(buildPage(4, ledger.Hash{}, 1, r)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Pages != 4 {
		t.Fatalf("got %d pages after reopen+append, want 4", st.Pages)
	}
}

func TestStoreStats(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, 6, 4)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Pages != 6 || st.Transactions != 24 || st.Payments != 24 {
		t.Errorf("stats = %+v", st)
	}
	if st.FirstSeq != 1 || st.LastSeq != 6 {
		t.Errorf("sequence range %d..%d, want 1..6", st.FirstSeq, st.LastSeq)
	}
	if st.Bytes == 0 || st.Segments == 0 {
		t.Errorf("stats missing size info: %+v", st)
	}
}

func TestStoreTransactionsAndStop(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, 5, 2)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	err = s.Transactions(func(p *ledger.Page, tx *ledger.Tx, m *ledger.TxMeta) error {
		count++
		if count == 3 {
			return ErrStop
		}
		return nil
	})
	if err != nil {
		t.Fatalf("ErrStop leaked: %v", err)
	}
	if count != 3 {
		t.Fatalf("iterated %d transactions, want early stop at 3", count)
	}
}

func TestStoreCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, 3, 2)
	segs, err := segmentFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the first record's payload.
	data[10] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	err = s.Pages(func(*ledger.Page) error { return nil })
	if !errors.Is(err, ErrCorrupted) {
		t.Fatalf("err = %v, want ErrCorrupted", err)
	}
}

func TestStoreTruncatedTailTolerated(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, 3, 2)
	segs, err := segmentFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := segs[len(segs)-1]
	info, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, info.Size()-5); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := s.Pages(func(*ledger.Page) error { count++; return nil }); err != nil {
		t.Fatalf("truncated tail should be tolerated, got %v", err)
	}
	if count != 2 {
		t.Fatalf("read %d pages from truncated store, want 2", count)
	}
}

func TestCreateRefusesNonEmpty(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, 1, 1)
	if _, err := Create(dir); err == nil {
		t.Error("Create on a populated directory: want error")
	}
}

func TestOpenRequiresSegments(t *testing.T) {
	if _, err := Open(t.TempDir()); err == nil {
		t.Error("Open on an empty directory: want error")
	}
	if _, err := Open(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("Open on a missing directory: want error")
	}
}

func TestVerifyIntegrityHealthy(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, 8, 2)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.VerifyIntegrity()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pages != 8 || !rep.ChainOK || rep.PageErrors != 0 {
		t.Errorf("report = %+v", rep)
	}
}

func TestVerifyIntegrityDetectsBrokenChain(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	p1 := buildPage(1, ledger.Hash{}, 1, r)
	p2 := buildPage(2, ledger.Hash{0xba, 0xd0}, 1, r) // wrong parent
	if err := s.Append(p1); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(p2); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := s.VerifyIntegrity()
	if err != nil {
		t.Fatal(err)
	}
	if rep.ChainOK {
		t.Error("broken linkage not detected")
	}
	if rep.BrokenAt != 2 {
		t.Errorf("BrokenAt = %d, want 2", rep.BrokenAt)
	}
}

func TestVerifyIntegrityDetectsCorruptPage(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(4))
	p := buildPage(1, ledger.Hash{}, 2, r)
	p.Header.TxSetHash = ledger.Hash{1} // internal inconsistency
	if err := s.Append(p); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	rep, err := s.VerifyIntegrity()
	if err != nil {
		t.Fatal(err)
	}
	if rep.PageErrors != 1 {
		t.Errorf("PageErrors = %d, want 1", rep.PageErrors)
	}
}

func TestExportJSON(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, 3, 2)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.ExportJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := 0
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines++
		if !strings.Contains(sc.Text(), `"sequence"`) {
			t.Error("JSON line missing header fields")
		}
	}
	if lines != 3 {
		t.Fatalf("exported %d JSON lines, want 3", lines)
	}
}
