// Command ledger-analyze runs the appendix analyses (Figures 4–7 and the
// offer-concentration measurement) over a ledgerstore directory produced
// by ledger-gen.
//
//	ledger-analyze -store ./history
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"ripplestudy/internal/analysis"
	"ripplestudy/internal/core"
	"ripplestudy/internal/ledgerstore"
)

func main() {
	storeDir := flag.String("store", "history", "ledgerstore directory")
	topK := flag.Int("top", 50, "intermediaries to list (Figure 7)")
	workers := flag.Int("workers", 0, "parallel segment-scan workers (0 = GOMAXPROCS)")
	ckptEvery := flag.Uint64("checkpoint-every", 0, "write state-tree checkpoints every N pages during replays (0 = resume only, never write)")
	flag.Parse()

	if err := run(*storeDir, *topK, *workers, *ckptEvery); err != nil {
		fmt.Fprintln(os.Stderr, "ledger-analyze:", err)
		os.Exit(1)
	}
}

func run(storeDir string, topK, workers int, ckptEvery uint64) error {
	store, err := ledgerstore.Open(storeDir)
	if err != nil {
		return err
	}
	integrity, err := store.VerifyIntegrity()
	if err != nil {
		return err
	}
	if !integrity.ChainOK || integrity.PageErrors > 0 {
		fmt.Printf("WARNING: store integrity: chainOK=%v (broken at %d), %d corrupt pages\n",
			integrity.ChainOK, integrity.BrokenAt, integrity.PageErrors)
	}
	// Load (and, if needed, rebuild) the sequence-index sidecar up front
	// so its health is visible: a corrupt or stale sidecar still works —
	// it rebuilds transparently — but an operator should know the cache
	// is being thrown away.
	if _, err := store.SegmentRanges(); err != nil {
		return err
	}
	if rep := store.IndexReport(); rep.Corrupt {
		fmt.Printf("WARNING: seqindex sidecar corrupt (%s); rebuilt %d segment entries\n",
			rep.Error, rep.Rebuilt)
	} else if !rep.Present {
		fmt.Println("note: seqindex sidecar absent; built fresh")
	} else if rep.Rebuilt > 0 {
		fmt.Printf("note: seqindex sidecar stale; rebuilt %d segment entries\n", rep.Rebuilt)
	}

	ds, err := core.OpenDataset(storeDir)
	if err != nil {
		return err
	}
	ds.SetWorkers(workers)
	ds.SetCheckpointEvery(ckptEvery)
	st, err := ds.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("history: %d pages (integrity ok), %d payments (%d failed), %d multi-hop, %d offers, %d active senders\n\n",
		st.TotalPages, st.Payments, st.Failed, st.MultiHop, st.Offers, st.ActiveUsers)

	hist, err := ds.Figure4()
	if err != nil {
		return err
	}
	fmt.Println("Figure 4 — most-used currencies:")
	for i, h := range hist {
		if i == 15 {
			fmt.Printf("  ... and %d more\n", len(hist)-15)
			break
		}
		fmt.Printf("  %-4s %9d\n", h.Currency, h.Payments)
	}

	curves, err := ds.Figure5()
	if err != nil {
		return err
	}
	fmt.Println("\nFigure 5 — survival of amounts (fraction of payments above):")
	thresholds := []float64{0.01, 1, 100, 10_000, 1e6, 1e8}
	fmt.Printf("  %-7s", "curve")
	for _, t := range thresholds {
		fmt.Printf(" %8.0e", t)
	}
	fmt.Println()
	for _, c := range curves {
		pts := pick(c.Points, thresholds)
		fmt.Printf("  %-7s", c.Label)
		for _, p := range pts {
			fmt.Printf(" %8.3f", p)
		}
		fmt.Println()
	}

	hops, parallel, err := ds.Figure6()
	if err != nil {
		return err
	}
	fmt.Println("\nFigure 6(a) — paths per intermediate-hop count:")
	printHist(hops)
	fmt.Println("Figure 6(b) — payments per parallel-path count:")
	printHist(parallel)

	conc, err := ds.OfferConcentration()
	if err != nil {
		return err
	}
	fmt.Printf("\nOffer concentration: top-10 %.0f%%, top-50 %.0f%%, top-100 %.0f%%\n",
		100*conc[10], 100*conc[50], 100*conc[100])

	top, err := ds.Figure7(topK)
	if err != nil {
		return err
	}
	fmt.Printf("\nFigure 7 — top %d intermediaries:\n", len(top))
	fmt.Printf("  %-24s %8s %10s %13s %13s %13s\n",
		"account", "gateway", "times-hop", "trust-recv€", "trust-given€", "balance€")
	for _, it := range top {
		gw := ""
		if it.Gateway {
			gw = "yes"
		}
		fmt.Printf("  %-24s %8s %10d %13.3g %13.3g %13.3g\n",
			it.Name, gw, it.TimesIntermediate,
			it.Profile.TrustReceived, it.Profile.TrustGiven, it.Profile.NetBalance)
	}
	return nil
}

// pick samples the precomputed survival curve at the requested
// thresholds (the curve's grid is a superset).
func pick(points []analysis.SurvivalPoint, thresholds []float64) []float64 {
	out := make([]float64, 0, len(thresholds))
	for _, t := range thresholds {
		best := 0.0
		for _, p := range points {
			if p.Amount <= t*1.0001 {
				best = p.Fraction
			}
		}
		out = append(out, best)
	}
	return out
}

func printHist(h map[int]int64) {
	keys := make([]int, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		fmt.Printf("  %3d %9d\n", k, h[k])
	}
}
