package monitor

import (
	"testing"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/consensus"
	"ripplestudy/internal/ledger"
)

// nodeProposal builds one validator's per-round proposal event.
func nodeProposal(kpSeed uint64, seq uint64, txs ...ledger.Hash) consensus.Event {
	return consensus.Event{
		Kind:     consensus.EventProposal,
		Seq:      seq,
		Node:     addr.KeyPairFromSeed(kpSeed).NodeID(),
		TxHashes: txs,
	}
}

// TestDetectorSeparatesStarvationFromCensorship is the core regression:
// with per-validator proposals streamed, a transaction one validator
// consistently omits (while its peers propose it) is censorship with the
// omitter named, and a transaction everyone proposes but that never
// closes is starvation — not a second censorship count.
func TestDetectorSeparatesStarvationFromCensorship(t *testing.T) {
	c := NewCollector()
	c.ConfigureDetector(DetectorConfig{CensorshipCloses: 3})
	victim := ledger.SHA512Half([]byte("victim tx"))
	starve := ledger.SHA512Half([]byte("starved tx"))
	censor := addr.KeyPairFromSeed(3).NodeID()

	for seq := uint64(1); seq <= 5; seq++ {
		bg := ledger.SHA512Half([]byte{byte(seq), 'b', 'g'})
		// Aggregate proposal, then each validator's own set: nodes 1 and
		// 2 propose everything, node 3 strips the victim.
		c.Record(consensus.Event{Kind: consensus.EventProposal, Seq: seq,
			TxHashes: []ledger.Hash{victim, starve, bg}})
		c.Record(nodeProposal(1, seq, victim, starve, bg))
		c.Record(nodeProposal(2, seq, victim, starve, bg))
		c.Record(nodeProposal(3, seq, starve, bg))
		c.Record(signedValidation(1, seq, pageHash(seq)))
		// Only the background tx closes: the victim is vetoed, the
		// starved tx never converges despite unanimous proposals.
		c.Record(closeEvent(seq, pageHash(seq), bg))
	}

	s := c.Detector().Summary()
	if s.SuspectedCensoredTxs != 1 {
		t.Errorf("SuspectedCensoredTxs = %d, want exactly the victim", s.SuspectedCensoredTxs)
	}
	if s.StarvedTxs != 1 {
		t.Errorf("StarvedTxs = %d, want exactly the starved tx", s.StarvedTxs)
	}
	if !s.Attacked() {
		t.Error("censorship+starvation did not mark the collection attacked")
	}
	var cAlert, sAlert *Alert
	alerts := c.Detector().Alerts()
	for i := range alerts {
		switch alerts[i].Kind {
		case AlertCensorship:
			cAlert = &alerts[i]
		case AlertStarvation:
			sAlert = &alerts[i]
		}
	}
	if cAlert == nil || cAlert.TxHash != victim {
		t.Fatalf("censorship alert = %+v, want the victim tx", cAlert)
	}
	if cAlert.Node != censor {
		t.Errorf("censorship alert names %s, want the consistent omitter %s",
			cAlert.Node.Short(), censor.Short())
	}
	if sAlert == nil || sAlert.TxHash != starve {
		t.Fatalf("starvation alert = %+v, want the starved tx", sAlert)
	}
	if sAlert.Node != (addr.NodeID{}) {
		t.Errorf("starvation alert blames validator %s; nobody omitted it", sAlert.Node.Short())
	}
}

// TestDetectorStalledProposerIsNotAnOmitter pins the empty-set rule: a
// validator that proposes nothing at all (a delayer — the network skips
// empty proposal sets) must not count as "omitting" every transaction,
// or every liveness failure would read as that validator censoring all
// traffic.
func TestDetectorStalledProposerIsNotAnOmitter(t *testing.T) {
	c := NewCollector()
	c.ConfigureDetector(DetectorConfig{CensorshipCloses: 3})
	tx := ledger.SHA512Half([]byte("stuck tx"))
	for seq := uint64(1); seq <= 5; seq++ {
		c.Record(consensus.Event{Kind: consensus.EventProposal, Seq: seq, TxHashes: []ledger.Hash{tx}})
		// Nodes 1 and 2 propose it; node 3 (the delayer) sends nothing,
		// so no event for it exists at all.
		c.Record(nodeProposal(1, seq, tx))
		c.Record(nodeProposal(2, seq, tx))
		c.Record(signedValidation(1, seq, pageHash(seq)))
		c.Record(closeEvent(seq, pageHash(seq))) // empty close: nothing agreed
	}
	s := c.Detector().Summary()
	if s.SuspectedCensoredTxs != 0 {
		t.Errorf("SuspectedCensoredTxs = %d, want 0: the unanimous proposers starved, nobody censored", s.SuspectedCensoredTxs)
	}
	if s.StarvedTxs != 1 {
		t.Errorf("StarvedTxs = %d, want 1", s.StarvedTxs)
	}
}

// TestDelayerScenarioReportsStarvationNotCensorship runs the real
// 1-delayer liveness attack end to end: the delayer withholds proposals
// through every escalation deadline, so nothing converges and every
// round closes empty while traffic piles up. The old detector reported
// that as mass censorship; the proposal diff must file it as starvation.
func TestDelayerScenarioReportsStarvationNotCensorship(t *testing.T) {
	col := NewCollector()
	sc := consensus.ScenarioConfig{
		Name: "delayer-starvation", Rounds: 30, Seed: 5,
		Attack:  consensus.AttackSpec{Delayers: 1},
		OnEvent: col.Record,
	}
	if _, err := consensus.RunScenario(sc); err != nil {
		t.Fatal(err)
	}
	s := col.Detector().Summary()
	if s.SuspectedCensoredTxs != 0 {
		t.Errorf("SuspectedCensoredTxs = %d, want 0: a delayer starves traffic, it does not target it", s.SuspectedCensoredTxs)
	}
	if s.StarvedTxs == 0 {
		t.Error("StarvedTxs = 0: the stalled rounds' expired traffic went unreported")
	}
	if !s.Attacked() {
		t.Error("starvation did not mark the collection attacked")
	}
	for _, a := range col.Detector().Alerts() {
		if a.Kind == AlertCensorship {
			t.Fatalf("spurious censorship alert under a pure liveness stall: %s", a.Detail)
		}
	}
}

// TestCensorScenarioStillReportsCensorship is the flip side: the real
// censor attack must keep tripping AlertCensorship — with the censor
// named — and must not dilute into starvation counts.
func TestCensorScenarioStillReportsCensorship(t *testing.T) {
	col := NewCollector()
	sc := consensus.ScenarioConfig{
		Name: "censor-targeted", Rounds: 30, Seed: 5,
		Attack:  consensus.AttackSpec{Censors: 1},
		OnEvent: col.Record,
	}
	net, traffic := sc.Build()
	if _, err := net.Run(30, traffic); err != nil {
		t.Fatal(err)
	}
	s := col.Detector().Summary()
	if s.SuspectedCensoredTxs == 0 {
		t.Fatal("censor scenario raised no censorship suspicion")
	}
	if s.StarvedTxs != 0 {
		t.Errorf("StarvedTxs = %d, want 0: background traffic closes normally under a censor", s.StarvedTxs)
	}
	censorID, ok := net.NodeIDOf("censor-1")
	if !ok {
		t.Fatal("censor-1 missing from the network")
	}
	named := false
	for _, a := range col.Detector().Alerts() {
		if a.Kind != AlertCensorship {
			continue
		}
		if a.Node == censorID {
			named = true
		} else {
			t.Errorf("censorship alert blames %s, want censor-1 (%s)", a.Node.Short(), censorID.Short())
		}
	}
	if !named {
		t.Error("no censorship alert names the censor")
	}
}
