package payment

import (
	"testing"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
	"ripplestudy/internal/ledger"
	"ripplestudy/internal/pathfind"
)

func kp(seed uint64) *addr.KeyPair { return addr.KeyPairFromSeed(seed) }

func val(s string) amount.Value { return amount.MustParse(s) }

// submit builds, signs, and applies a transaction with the account's
// next sequence number.
func submit(t *testing.T, e *Engine, sender *addr.KeyPair, mutate func(*ledger.Tx)) *ledger.TxMeta {
	t.Helper()
	tx := &ledger.Tx{
		Account:  sender.AccountID(),
		Sequence: e.NextSequence(sender.AccountID()),
		Fee:      BaseFee,
	}
	mutate(tx)
	tx.Sign(sender)
	meta, err := e.Apply(tx)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	return meta
}

func fundedEngine(t *testing.T, holders ...*addr.KeyPair) *Engine {
	t.Helper()
	e := NewEngine()
	for _, h := range holders {
		e.Fund(h.AccountID(), 1_000_000_000) // 1000 XRP
	}
	return e
}

func TestGenesisState(t *testing.T) {
	e := NewEngine()
	if e.TotalDrops() != ledger.GenesisTotalDrops {
		t.Errorf("total drops = %d, want genesis supply", e.TotalDrops())
	}
	if e.XRPBalance(addr.AccountZero) != amount.Drops(ledger.GenesisTotalDrops) {
		t.Error("ACCOUNT_ZERO does not own the full supply at genesis")
	}
}

func TestXRPPaymentAndActivation(t *testing.T) {
	alice, bob := kp(1), kp(2)
	e := fundedEngine(t, alice)
	if e.AccountExists(bob.AccountID()) {
		t.Fatal("bob exists before funding")
	}
	meta := submit(t, e, alice, func(tx *ledger.Tx) {
		tx.Type = ledger.TxPayment
		tx.Destination = bob.AccountID()
		tx.Amount = amount.XRPAmount(50_000_000) // 50 XRP
	})
	if !meta.Result.Succeeded() {
		t.Fatalf("result = %s", meta.Result)
	}
	if got := e.XRPBalance(bob.AccountID()); got != 50_000_000 {
		t.Errorf("bob balance = %d, want 50000000", got)
	}
	if !e.AccountExists(bob.AccountID()) {
		t.Error("XRP payment did not activate bob")
	}
	// Fee destroyed and supply shrank.
	if e.FeesDestroyed() != BaseFee {
		t.Errorf("fees destroyed = %d, want %d", e.FeesDestroyed(), BaseFee)
	}
	if e.TotalDrops() != ledger.GenesisTotalDrops-uint64(BaseFee) {
		t.Error("total supply did not shrink by the fee")
	}
	if got := e.XRPBalance(alice.AccountID()); got != 1_000_000_000-50_000_000-amount.Drops(BaseFee) {
		t.Errorf("alice balance = %d", got)
	}
}

func TestXRPPaymentUnfunded(t *testing.T) {
	alice, bob := kp(1), kp(2)
	e := fundedEngine(t, alice, bob)
	meta := submit(t, e, alice, func(tx *ledger.Tx) {
		tx.Type = ledger.TxPayment
		tx.Destination = bob.AccountID()
		tx.Amount = amount.XRPAmount(2_000_000_000) // more than alice has
	})
	if meta.Result != ledger.ResultUnfunded {
		t.Errorf("result = %s, want tecUNFUNDED", meta.Result)
	}
	// Fee still burned, sequence still consumed.
	if e.NextSequence(alice.AccountID()) != 2 {
		t.Error("failed payment did not consume a sequence number")
	}
}

func TestSequenceDiscipline(t *testing.T) {
	alice, bob := kp(1), kp(2)
	e := fundedEngine(t, alice, bob)
	tx := &ledger.Tx{
		Type:        ledger.TxPayment,
		Account:     alice.AccountID(),
		Sequence:    7, // wrong: expected 1
		Fee:         BaseFee,
		Destination: bob.AccountID(),
		Amount:      amount.XRPAmount(1_000_000),
	}
	tx.Sign(alice)
	meta, err := e.Apply(tx)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Result != ledger.ResultBadSequence {
		t.Errorf("result = %s, want tefPAST_SEQ", meta.Result)
	}
	if e.NextSequence(alice.AccountID()) != 1 {
		t.Error("bad-sequence tx consumed a sequence number")
	}
}

func TestUnknownSenderRejected(t *testing.T) {
	ghost, bob := kp(66), kp(2)
	e := fundedEngine(t, bob)
	tx := &ledger.Tx{
		Type:        ledger.TxPayment,
		Account:     ghost.AccountID(),
		Sequence:    1,
		Fee:         BaseFee,
		Destination: bob.AccountID(),
		Amount:      amount.XRPAmount(1),
	}
	tx.Sign(ghost)
	meta, err := e.Apply(tx)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Result != ledger.ResultUnfunded {
		t.Errorf("result = %s, want tecUNFUNDED for unknown sender", meta.Result)
	}
}

func TestTrustSetAndIOUPayment(t *testing.T) {
	alice, bob := kp(1), kp(2)
	e := fundedEngine(t, alice, bob)
	// Alice trusts Bob for 10 USD.
	meta := submit(t, e, alice, func(tx *ledger.Tx) {
		tx.Type = ledger.TxTrustSet
		tx.LimitPeer = bob.AccountID()
		tx.Limit = amount.New(amount.USD, val("10"))
	})
	if !meta.Result.Succeeded() {
		t.Fatalf("TrustSet: %s", meta.Result)
	}
	// Bob pays Alice 4.5 USD over the trust-line.
	meta = submit(t, e, bob, func(tx *ledger.Tx) {
		tx.Type = ledger.TxPayment
		tx.Destination = alice.AccountID()
		tx.Amount = amount.New(amount.USD, val("4.5"))
	})
	if !meta.Result.Succeeded() {
		t.Fatalf("IOU payment: %s", meta.Result)
	}
	if meta.Delivered.Value.Cmp(val("4.5")) != 0 {
		t.Errorf("delivered %s, want 4.5", meta.Delivered)
	}
	if got := e.Graph().Owed(alice.AccountID(), bob.AccountID(), amount.USD); got.Cmp(val("4.5")) != 0 {
		t.Errorf("bob owes alice %s, want 4.5", got)
	}
	if meta.ParallelPaths() != 1 || meta.MaxHops() != 0 {
		t.Errorf("meta paths = %v", meta.PathHops)
	}
	if meta.CrossCurrency {
		t.Error("same-currency payment marked cross-currency")
	}
}

func TestIOUPaymentPathDry(t *testing.T) {
	alice, bob := kp(1), kp(2)
	e := fundedEngine(t, alice, bob)
	submit(t, e, alice, func(tx *ledger.Tx) {
		tx.Type = ledger.TxTrustSet
		tx.LimitPeer = bob.AccountID()
		tx.Limit = amount.New(amount.USD, val("10"))
	})
	meta := submit(t, e, bob, func(tx *ledger.Tx) {
		tx.Type = ledger.TxPayment
		tx.Destination = alice.AccountID()
		tx.Amount = amount.New(amount.USD, val("25")) // above the limit
	})
	if meta.Result != ledger.ResultPathDry {
		t.Errorf("result = %s, want tecPATH_DRY", meta.Result)
	}
	// Nothing moved.
	if got := e.Graph().Owed(alice.AccountID(), bob.AccountID(), amount.USD); !got.IsZero() {
		t.Errorf("failed payment moved value: %s", got)
	}
}

func TestIOUPaymentToMissingDestination(t *testing.T) {
	alice := kp(1)
	e := fundedEngine(t, alice)
	meta := submit(t, e, alice, func(tx *ledger.Tx) {
		tx.Type = ledger.TxPayment
		tx.Destination = kp(99).AccountID()
		tx.Amount = amount.New(amount.USD, val("1"))
	})
	if meta.Result != ledger.ResultNoDestination {
		t.Errorf("result = %s, want tecNO_DST", meta.Result)
	}
}

func TestRipplingThroughIntermediary(t *testing.T) {
	// Figure 1: A trusts B, B trusts C; C pays A through B.
	a, b, c := kp(1), kp(2), kp(3)
	e := fundedEngine(t, a, b, c)
	submit(t, e, a, func(tx *ledger.Tx) {
		tx.Type = ledger.TxTrustSet
		tx.LimitPeer = b.AccountID()
		tx.Limit = amount.New(amount.USD, val("10"))
	})
	submit(t, e, b, func(tx *ledger.Tx) {
		tx.Type = ledger.TxTrustSet
		tx.LimitPeer = c.AccountID()
		tx.Limit = amount.New(amount.USD, val("20"))
	})
	meta := submit(t, e, c, func(tx *ledger.Tx) {
		tx.Type = ledger.TxPayment
		tx.Destination = a.AccountID()
		tx.Amount = amount.New(amount.USD, val("10"))
	})
	if !meta.Result.Succeeded() {
		t.Fatalf("rippled payment: %s", meta.Result)
	}
	if meta.MaxHops() != 1 {
		t.Errorf("hops = %d, want 1 (through B)", meta.MaxHops())
	}
	if len(meta.Intermediaries) != 1 || meta.Intermediaries[0] != b.AccountID() {
		t.Errorf("intermediaries = %v, want exactly B", meta.Intermediaries)
	}
	// Debt moved along the chain: C owes B, B owes A.
	if got := e.Graph().Owed(b.AccountID(), c.AccountID(), amount.USD); got.Cmp(val("10")) != 0 {
		t.Errorf("C owes B %s, want 10", got)
	}
	if got := e.Graph().Owed(a.AccountID(), b.AccountID(), amount.USD); got.Cmp(val("10")) != 0 {
		t.Errorf("B owes A %s, want 10", got)
	}
}

// crossCurrencyEngine sets up a EUR→USD market maker between src and dst.
func crossCurrencyEngine(t *testing.T) (*Engine, *addr.KeyPair, *addr.KeyPair, *addr.KeyPair) {
	t.Helper()
	src, mm, dst := kp(1), kp(2), kp(3)
	e := fundedEngine(t, src, mm, dst)
	submit(t, e, mm, func(tx *ledger.Tx) { // mm trusts src in EUR
		tx.Type = ledger.TxTrustSet
		tx.LimitPeer = src.AccountID()
		tx.Limit = amount.New(amount.EUR, val("1000"))
	})
	submit(t, e, dst, func(tx *ledger.Tx) { // dst trusts mm in USD
		tx.Type = ledger.TxTrustSet
		tx.LimitPeer = mm.AccountID()
		tx.Limit = amount.New(amount.USD, val("1000"))
	})
	meta := submit(t, e, mm, func(tx *ledger.Tx) { // mm sells 100 USD for 90 EUR
		tx.Type = ledger.TxOfferCreate
		tx.TakerPays = amount.New(amount.EUR, val("90"))
		tx.TakerGets = amount.New(amount.USD, val("100"))
	})
	if !meta.Result.Succeeded() {
		t.Fatalf("OfferCreate: %s", meta.Result)
	}
	return e, src, mm, dst
}

func TestCrossCurrencyPayment(t *testing.T) {
	e, src, mm, dst := crossCurrencyEngine(t)
	meta := submit(t, e, src, func(tx *ledger.Tx) {
		tx.Type = ledger.TxPayment
		tx.Destination = dst.AccountID()
		tx.Amount = amount.New(amount.USD, val("50"))
		tx.SendMax = amount.New(amount.EUR, val("60"))
	})
	if !meta.Result.Succeeded() {
		t.Fatalf("cross-currency payment: %s", meta.Result)
	}
	if !meta.CrossCurrency {
		t.Error("payment not marked cross-currency")
	}
	if meta.OffersConsumed != 1 {
		t.Errorf("offers consumed = %d, want 1", meta.OffersConsumed)
	}
	// src paid 45 EUR to mm; mm delivered 50 USD to dst.
	if got := e.Graph().Owed(mm.AccountID(), src.AccountID(), amount.EUR); got.Cmp(val("45")) != 0 {
		t.Errorf("src owes mm %s EUR, want 45", got)
	}
	if got := e.Graph().Owed(dst.AccountID(), mm.AccountID(), amount.USD); got.Cmp(val("50")) != 0 {
		t.Errorf("mm owes dst %s USD, want 50", got)
	}
	// The offer shrank.
	if e.Books().NumOffers() != 1 {
		t.Fatal("offer disappeared after partial fill")
	}
}

func TestSendMaxEnforced(t *testing.T) {
	e, src, _, dst := crossCurrencyEngine(t)
	meta := submit(t, e, src, func(tx *ledger.Tx) {
		tx.Type = ledger.TxPayment
		tx.Destination = dst.AccountID()
		tx.Amount = amount.New(amount.USD, val("50"))
		tx.SendMax = amount.New(amount.EUR, val("40")) // needs 45
	})
	if meta.Result != ledger.ResultPathDry {
		t.Errorf("result = %s, want tecPATH_DRY when SendMax too low", meta.Result)
	}
}

func TestMarketMakerAblationKillsCrossCurrency(t *testing.T) {
	e, src, _, dst := crossCurrencyEngine(t)
	removed := e.RemoveMarketMakers()
	if len(removed) != 1 {
		t.Fatalf("removed %d market makers, want 1", len(removed))
	}
	if e.Books().NumOffers() != 0 {
		t.Error("offers survived ablation")
	}
	meta := submit(t, e, src, func(tx *ledger.Tx) {
		tx.Type = ledger.TxPayment
		tx.Destination = dst.AccountID()
		tx.Amount = amount.New(amount.USD, val("10"))
		tx.SendMax = amount.New(amount.EUR, val("20"))
	})
	if meta.Result != ledger.ResultPathDry {
		t.Errorf("result = %s, want tecPATH_DRY after ablation", meta.Result)
	}
}

func TestOfferCancel(t *testing.T) {
	mm := kp(1)
	e := fundedEngine(t, mm)
	meta := submit(t, e, mm, func(tx *ledger.Tx) {
		tx.Type = ledger.TxOfferCreate
		tx.TakerPays = amount.New(amount.EUR, val("90"))
		tx.TakerGets = amount.New(amount.USD, val("100"))
	})
	if !meta.Result.Succeeded() {
		t.Fatal(meta.Result)
	}
	if e.Books().NumOffers() != 1 {
		t.Fatal("offer not placed")
	}
	meta = submit(t, e, mm, func(tx *ledger.Tx) {
		tx.Type = ledger.TxOfferCancel
		tx.OfferSequence = 1
	})
	if !meta.Result.Succeeded() {
		t.Fatal(meta.Result)
	}
	if e.Books().NumOffers() != 0 {
		t.Error("offer survived cancel")
	}
}

func TestMalformedTransactions(t *testing.T) {
	alice, bob := kp(1), kp(2)
	e := fundedEngine(t, alice, bob)
	// Self-payment.
	meta := submit(t, e, alice, func(tx *ledger.Tx) {
		tx.Type = ledger.TxPayment
		tx.Destination = alice.AccountID()
		tx.Amount = amount.XRPAmount(1)
	})
	if meta.Result != ledger.ResultMalformed {
		t.Errorf("self-payment result = %s, want temMALFORMED", meta.Result)
	}
	// Zero amount.
	meta = submit(t, e, alice, func(tx *ledger.Tx) {
		tx.Type = ledger.TxPayment
		tx.Destination = bob.AccountID()
	})
	if meta.Result != ledger.ResultMalformed {
		t.Errorf("zero payment result = %s, want temMALFORMED", meta.Result)
	}
	// Same-currency offer.
	meta = submit(t, e, alice, func(tx *ledger.Tx) {
		tx.Type = ledger.TxOfferCreate
		tx.TakerPays = amount.New(amount.USD, val("1"))
		tx.TakerGets = amount.New(amount.USD, val("1"))
	})
	if meta.Result != ledger.ResultMalformed {
		t.Errorf("bad offer result = %s, want temMALFORMED", meta.Result)
	}
	// XRP trust-line.
	meta = submit(t, e, alice, func(tx *ledger.Tx) {
		tx.Type = ledger.TxTrustSet
		tx.LimitPeer = bob.AccountID()
		tx.Limit = amount.XRPAmount(1)
	})
	if meta.Result != ledger.ResultMalformed {
		t.Errorf("XRP trust result = %s, want temMALFORMED", meta.Result)
	}
	// Unknown type.
	meta = submit(t, e, alice, func(tx *ledger.Tx) { tx.Type = ledger.TxType(42) })
	if meta.Result != ledger.ResultMalformed {
		t.Errorf("unknown type result = %s, want temMALFORMED", meta.Result)
	}
}

func TestAccountSetIsNoOp(t *testing.T) {
	alice := kp(1)
	e := fundedEngine(t, alice)
	meta := submit(t, e, alice, func(tx *ledger.Tx) { tx.Type = ledger.TxAccountSet })
	if !meta.Result.Succeeded() {
		t.Errorf("AccountSet result = %s", meta.Result)
	}
}

func TestStateDigestDeterminism(t *testing.T) {
	run := func() ledger.Hash {
		alice, bob := kp(1), kp(2)
		e := fundedEngine(t, alice, bob)
		submit(t, e, alice, func(tx *ledger.Tx) {
			tx.Type = ledger.TxPayment
			tx.Destination = bob.AccountID()
			tx.Amount = amount.XRPAmount(123)
		})
		submit(t, e, bob, func(tx *ledger.Tx) {
			tx.Type = ledger.TxTrustSet
			tx.LimitPeer = alice.AccountID()
			tx.Limit = amount.New(amount.USD, val("5"))
		})
		return e.StateDigest()
	}
	if run() != run() {
		t.Error("identical histories produced different state digests")
	}
}

func TestCloneIndependence(t *testing.T) {
	alice, bob := kp(1), kp(2)
	e := fundedEngine(t, alice, bob)
	cp := e.Clone()
	submit(t, cp, alice, func(tx *ledger.Tx) {
		tx.Type = ledger.TxPayment
		tx.Destination = bob.AccountID()
		tx.Amount = amount.XRPAmount(1_000_000)
	})
	if e.XRPBalance(bob.AccountID()) != 1_000_000_000 {
		t.Error("clone mutation leaked into original")
	}
	if cp.XRPBalance(bob.AccountID()) != 1_001_000_000 {
		t.Error("clone did not apply the payment")
	}
	if e.NextSequence(alice.AccountID()) != 1 {
		t.Error("clone consumed original's sequence")
	}
}

func TestWithPathfindingOption(t *testing.T) {
	// A 2-intermediary chain is unreachable with MaxHops(1).
	a, m1, m2, b := kp(1), kp(2), kp(3), kp(4)
	e := NewEngine(WithPathfinding(pathfind.WithMaxHops(1)))
	for _, k := range []*addr.KeyPair{a, m1, m2, b} {
		e.Fund(k.AccountID(), 1_000_000_000)
	}
	chain := []struct{ truster, trustee *addr.KeyPair }{
		{b, m2}, {m2, m1}, {m1, a},
	}
	for _, c := range chain {
		submit(t, e, c.truster, func(tx *ledger.Tx) {
			tx.Type = ledger.TxTrustSet
			tx.LimitPeer = c.trustee.AccountID()
			tx.Limit = amount.New(amount.USD, val("100"))
		})
	}
	meta := submit(t, e, a, func(tx *ledger.Tx) {
		tx.Type = ledger.TxPayment
		tx.Destination = b.AccountID()
		tx.Amount = amount.New(amount.USD, val("10"))
	})
	if meta.Result != ledger.ResultPathDry {
		t.Errorf("result = %s, want tecPATH_DRY with MaxHops(1)", meta.Result)
	}
}

func TestSignatureVerificationOption(t *testing.T) {
	alice, bob := kp(1), kp(2)
	e := NewEngine(WithSignatureVerification())
	e.Fund(alice.AccountID(), 1_000_000_000)
	e.Fund(bob.AccountID(), 1_000_000_000)

	// Unsigned: rejected without touching state.
	tx := &ledger.Tx{
		Type:        ledger.TxPayment,
		Account:     alice.AccountID(),
		Sequence:    1,
		Fee:         BaseFee,
		Destination: bob.AccountID(),
		Amount:      amount.XRPAmount(1_000_000),
	}
	meta, err := e.Apply(tx)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Result != ledger.ResultMalformed {
		t.Errorf("unsigned tx = %s, want temMALFORMED", meta.Result)
	}
	if e.NextSequence(alice.AccountID()) != 1 {
		t.Error("rejected tx consumed a sequence")
	}
	// Signed by the wrong key: rejected.
	tx.Sign(bob)
	if meta, _ = e.Apply(tx); meta.Result != ledger.ResultMalformed {
		t.Errorf("wrong-key tx = %s, want temMALFORMED", meta.Result)
	}
	// Properly signed: applies.
	tx.Sign(alice)
	if meta, _ = e.Apply(tx); !meta.Result.Succeeded() {
		t.Errorf("signed tx = %s, want success", meta.Result)
	}
	// ACCOUNT_ZERO is exempt (its key is public).
	zeroTx := &ledger.Tx{
		Type:        ledger.TxPayment,
		Account:     addr.AccountZero,
		Sequence:    e.NextSequence(addr.AccountZero),
		Fee:         BaseFee,
		Destination: bob.AccountID(),
		Amount:      amount.XRPAmount(1),
	}
	if meta, _ = e.Apply(zeroTx); !meta.Result.Succeeded() {
		t.Errorf("ACCOUNT_ZERO unsigned tx = %s, want success", meta.Result)
	}
	// The option survives Clone.
	clone := e.Clone()
	bad := &ledger.Tx{
		Type: ledger.TxAccountSet, Account: alice.AccountID(),
		Sequence: clone.NextSequence(alice.AccountID()), Fee: BaseFee,
	}
	if meta, _ = clone.Apply(bad); meta.Result != ledger.ResultMalformed {
		t.Errorf("clone accepted unsigned tx: %s", meta.Result)
	}
}

func TestFundIgnoresNegative(t *testing.T) {
	e := NewEngine()
	a := kp(1).AccountID()
	e.Fund(a, -5)
	if e.XRPBalance(a) != 0 || e.AccountExists(a) {
		t.Error("negative funding created state")
	}
}

func TestOfferCancelMissingSucceeds(t *testing.T) {
	// rippled treats cancelling a consumed/missing offer as success.
	mm := kp(1)
	e := fundedEngine(t, mm)
	meta := submit(t, e, mm, func(tx *ledger.Tx) {
		tx.Type = ledger.TxOfferCancel
		tx.OfferSequence = 999
	})
	if !meta.Result.Succeeded() {
		t.Errorf("cancel of missing offer = %s, want success", meta.Result)
	}
}

func TestSameCurrencySendMaxCap(t *testing.T) {
	alice, bob := kp(1), kp(2)
	e := fundedEngine(t, alice, bob)
	submit(t, e, alice, func(tx *ledger.Tx) {
		tx.Type = ledger.TxTrustSet
		tx.LimitPeer = bob.AccountID()
		tx.Limit = amount.New(amount.USD, val("100"))
	})
	meta := submit(t, e, bob, func(tx *ledger.Tx) {
		tx.Type = ledger.TxPayment
		tx.Destination = alice.AccountID()
		tx.Amount = amount.New(amount.USD, val("50"))
		tx.SendMax = amount.New(amount.USD, val("10")) // cap below the amount
	})
	if meta.Result != ledger.ResultPathDry {
		t.Errorf("result = %s, want tecPATH_DRY when SendMax < Amount", meta.Result)
	}
}

func TestFeeFloorsAtBase(t *testing.T) {
	alice, bob := kp(1), kp(2)
	e := fundedEngine(t, alice, bob)
	before := e.XRPBalance(alice.AccountID())
	tx := &ledger.Tx{
		Type:        ledger.TxPayment,
		Account:     alice.AccountID(),
		Sequence:    e.NextSequence(alice.AccountID()),
		Fee:         1, // below BaseFee
		Destination: bob.AccountID(),
		Amount:      amount.XRPAmount(1_000_000),
	}
	tx.Sign(alice)
	if _, err := e.Apply(tx); err != nil {
		t.Fatal(err)
	}
	spent := before - e.XRPBalance(alice.AccountID())
	if spent != 1_000_000+amount.Drops(BaseFee) {
		t.Errorf("spent %d drops, want amount + BaseFee floor", spent)
	}
}

func TestGraphInvariantsAfterWorkload(t *testing.T) {
	// A small mixed workload must leave the credit network internally
	// consistent.
	a, b, c := kp(1), kp(2), kp(3)
	e := fundedEngine(t, a, b, c)
	pairs := []struct {
		truster, trustee *addr.KeyPair
	}{{a, b}, {b, c}, {c, a}, {b, a}}
	for _, p := range pairs {
		submit(t, e, p.truster, func(tx *ledger.Tx) {
			tx.Type = ledger.TxTrustSet
			tx.LimitPeer = p.trustee.AccountID()
			tx.Limit = amount.New(amount.USD, val("100"))
		})
	}
	senders := []*addr.KeyPair{b, c, a, b, c}
	receivers := []*addr.KeyPair{a, b, c, c, a}
	for i := range senders {
		if senders[i] == receivers[i] {
			continue
		}
		submit(t, e, senders[i], func(tx *ledger.Tx) {
			tx.Type = ledger.TxPayment
			tx.Destination = receivers[i].AccountID()
			tx.Amount = amount.New(amount.USD, val("7"))
		})
	}
	if errs := e.Graph().CheckInvariants(); len(errs) != 0 {
		t.Fatalf("invariants violated: %v", errs)
	}
}
