package consensus

import (
	"testing"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
	"ripplestudy/internal/ledger"
)

// TestSafetyNoConflictingValidations verifies agreement safety: within
// one run, no two distinct main-chain pages are ever validated at the
// same sequence, and no validated hash ever conflicts with the chain.
func TestSafetyNoConflictingValidations(t *testing.T) {
	specs := activeSpecs(7)
	// Add noise: laggards and forks whose validations must never
	// produce a conflicting *validated* page.
	specs = append(specs,
		ValidatorSpec{Behavior: BehaviorLaggard, Seed: 50, Availability: 1, SyncProbability: 0.2},
		ValidatorSpec{Behavior: BehaviorForked, Seed: 51, Availability: 1},
		ValidatorSpec{Behavior: BehaviorTestnet, Seed: 52, Availability: 1},
	)
	n := NewNetwork(Config{Seed: 31, TxDropRate: 0.1}, specs)
	validatedAt := make(map[uint64]ledger.Hash)
	n.Subscribe(func(ev Event) {
		if ev.Kind != EventLedgerClosed {
			return
		}
		if prev, ok := validatedAt[ev.Seq]; ok && prev != ev.LedgerHash {
			t.Fatalf("two different pages validated at sequence %d", ev.Seq)
		}
		validatedAt[ev.Seq] = ev.LedgerHash
	})
	alice := addr.KeyPairFromSeed(99)
	n.Engine().Fund(alice.AccountID(), 10_000_000_000)
	if _, err := n.Run(200, func(round int) []*ledger.Tx {
		if round%3 != 0 {
			return nil
		}
		tx := &ledger.Tx{
			Type:        ledger.TxPayment,
			Account:     alice.AccountID(),
			Sequence:    n.Engine().NextSequence(alice.AccountID()),
			Fee:         10,
			Destination: addr.KeyPairFromSeed(uint64(200 + round)).AccountID(),
			Amount:      amount.XRPAmount(1_000_000),
		}
		tx.Sign(alice)
		return []*ledger.Tx{tx}
	}); err != nil {
		t.Fatal(err)
	}
	// Every validated hash must be on the canonical chain.
	for seq, h := range validatedAt {
		page, ok := n.Chain().ByHash(h)
		if !ok {
			t.Fatalf("validated hash at seq %d is not on the main chain", seq)
		}
		if page.Header.Sequence != seq {
			t.Fatalf("validated hash at seq %d belongs to page %d", seq, page.Header.Sequence)
		}
	}
	if len(validatedAt) < 190 {
		t.Errorf("only %d/200 rounds validated", len(validatedAt))
	}
}

// TestLivenessUnderPartialAvailability: with 90%-available trusted
// validators, most rounds still reach the 80% quorum.
func TestLivenessUnderPartialAvailability(t *testing.T) {
	specs := make([]ValidatorSpec, 0, 10)
	for i := 0; i < 10; i++ {
		specs = append(specs, ValidatorSpec{
			Behavior: BehaviorActive, Seed: uint64(i + 1),
			Availability: 0.9, Trusted: true,
		})
	}
	n := NewNetwork(Config{Seed: 8}, specs)
	validated := 0
	const rounds = 300
	for i := 0; i < rounds; i++ {
		res, err := n.RunRound(nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Validated {
			validated++
		}
	}
	frac := float64(validated) / rounds
	// P(quorum) with 10 validators at 0.9 needs ≥... the quorum counts
	// matching signatures vs *present* trusted actives; availability
	// gates both proposal and validation, so most rounds validate.
	if frac < 0.5 {
		t.Errorf("validated fraction %.2f, want majority of rounds", frac)
	}
	t.Logf("validated %d/%d rounds at 90%% availability", validated, rounds)
}

// TestChainHaltsWithoutQuorum: if most trusted validators are offline,
// rounds close pages (the simulator's canonical chain advances) but they
// are not validated — the monitor-visible symptom of the paper's DoS
// concern.
func TestChainHaltsWithoutQuorum(t *testing.T) {
	specs := make([]ValidatorSpec, 0, 5)
	for i := 0; i < 5; i++ {
		avail := 1.0
		if i >= 2 {
			avail = 0.01 // three of five effectively down
		}
		specs = append(specs, ValidatorSpec{
			Behavior: BehaviorActive, Seed: uint64(i + 1),
			Availability: avail, Trusted: true,
		})
	}
	n := NewNetwork(Config{Seed: 77}, specs)
	validated := 0
	for i := 0; i < 100; i++ {
		res, err := n.RunRound(nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Validated {
			validated++
		}
	}
	if validated > 20 {
		t.Errorf("validated %d/100 rounds with 3/5 trusted validators down; quorum should fail", validated)
	}
}
