package monitor

import (
	"fmt"
	"hash/fnv"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/consensus"
	"ripplestudy/internal/ledger"
)

// The fork/equivocation detector. The Figure 2 pipeline observes a
// benign population; this layer watches the same Record(ev) stream for
// the adversaries of "Security Analysis of Ripple Consensus": validators
// double-signing one ledger sequence (equivocation), two fully validated
// pages at the same sequence (a committed fork), transactions proposed
// round after round but never closed (targeted censorship when one
// validator consistently omits them from its proposals, starvation when
// the whole network fails to close them), rounds that stop producing
// validated ledgers (liveness stall), and validations that trail the
// stream's sequence high-water mark (delayed proposers).
//
// The detector's per-event bookkeeping also subsumes duplicate
// suppression: an exact replay of a previously recorded event (same
// kind, signer, sequence, hash, and signature) is dropped before it can
// double-count a validator's totals.

// AlertKind classifies a detector alert.
type AlertKind int

const (
	// AlertEquivocation: one validator signed two different page hashes
	// at the same ledger sequence.
	AlertEquivocation AlertKind = iota + 1
	// AlertFork: two fully validated pages observed at one sequence.
	AlertFork
	// AlertCensorship: a transaction was proposed but has not closed
	// within the configured number of subsequent ledger closes, and the
	// per-validator proposal diff shows a consistent omitter — one node
	// kept it out of its proposals while peers proposed it round after
	// round. (Streams without per-validator proposal events fall back to
	// flagging any expired proposed-but-unclosed transaction.)
	AlertCensorship
	// AlertStall: the stream carries validations for sequences far past
	// the last fully validated close — consensus has stopped finalizing.
	AlertStall
	// AlertLateValidation: a validation arrived for a sequence below the
	// stream's high-water mark — the signature of a delayed proposer.
	AlertLateValidation
	// AlertStarvation: a transaction expired unclosed but the
	// per-validator proposal diff shows no consistent omitter — everyone
	// proposed it (or nobody did) and it still never closed. A liveness
	// failure starving all traffic, not a targeted censor.
	AlertStarvation
)

// String implements fmt.Stringer.
func (k AlertKind) String() string {
	switch k {
	case AlertEquivocation:
		return "equivocation"
	case AlertFork:
		return "fork"
	case AlertCensorship:
		return "censorship"
	case AlertStall:
		return "stall"
	case AlertLateValidation:
		return "late-validation"
	case AlertStarvation:
		return "starvation"
	default:
		return fmt.Sprintf("AlertKind(%d)", int(k))
	}
}

// Alert is one detected attack indicator.
type Alert struct {
	Kind AlertKind
	// Node is the implicated validator (equivocation, late validation).
	Node addr.NodeID
	// Seq is the ledger sequence the alert refers to.
	Seq uint64
	// Hashes are the conflicting page hashes (equivocation, fork).
	Hashes []ledger.Hash
	// TxHash is the suspected-censored transaction (censorship).
	TxHash ledger.Hash
	// Detail is a human-readable one-liner.
	Detail string
}

// String renders the alert as a log line.
func (a Alert) String() string {
	return fmt.Sprintf("ALERT %s: %s", a.Kind, a.Detail)
}

// DetectorConfig tunes the detector's suspicion thresholds.
type DetectorConfig struct {
	// CensorshipCloses is how many ledger closes a proposed transaction
	// may miss before it is flagged as suspected-censored (default 5).
	CensorshipCloses int
	// StallSequences is how many sequences past the last fully validated
	// close the stream may advance before the liveness alarm (default 10).
	StallSequences int
	// OnAlert, when set, is invoked synchronously for every alert as it
	// fires — the consensus-monitor CLI streams these to stderr.
	OnAlert func(Alert)
}

// maxStoredAlerts bounds the retained alert list; counters keep exact
// totals past the cap.
const maxStoredAlerts = 1024

type nodeSeq struct {
	node addr.NodeID
	seq  uint64
}

// dedupKey identifies one event exactly: kind, signer, sequence, page
// hash, and a digest of the signature (and proposal tx set). Two events
// agreeing on all five are replays of the same broadcast; the digest
// keeps forged re-signatures of the same page distinct and countable.
type dedupKey struct {
	kind   consensus.EventKind
	node   addr.NodeID
	seq    uint64
	hash   ledger.Hash
	digest uint64
}

type pendingTx struct {
	firstSeq uint64
	closes   int
	alerted  bool

	// Per-validator proposal diffing. A round is "diffed" when some
	// proposer included the transaction and another (non-empty) proposer
	// omitted it; omits/proposes count, per node, how many diffed rounds
	// that node fell on each side of. perValidator marks that at least
	// one per-validator proposal event mentioned the tx at all — streams
	// without them (metadata-only) keep the legacy all-censorship
	// behavior.
	perValidator bool
	diffRounds   int
	omits        map[addr.NodeID]int
	proposes     map[addr.NodeID]int
}

// culprit returns the consistent omitter behind a targeted verdict: the
// node that omitted the transaction in every diffed round while some
// other node proposed it in every one. Ties break on node ID so alert
// attribution is deterministic.
func (p *pendingTx) culprit() (addr.NodeID, bool) {
	if p.diffRounds < 2 {
		return addr.NodeID{}, false
	}
	consistentProposer := false
	for _, n := range p.proposes {
		if n == p.diffRounds {
			consistentProposer = true
			break
		}
	}
	if !consistentProposer {
		return addr.NodeID{}, false
	}
	var out addr.NodeID
	found := false
	for node, n := range p.omits {
		if n != p.diffRounds {
			continue
		}
		if !found || node.String() < out.String() {
			out, found = node, true
		}
	}
	return out, found
}

// Detector watches a collection stream for attack indicators. Like the
// Collector it feeds from, it is not safe for concurrent use.
type Detector struct {
	cfg     DetectorConfig
	seen    map[dedupKey]struct{}
	deduped uint64

	sigsAt        map[nodeSeq][]ledger.Hash
	equivocations int
	equivocators  map[addr.NodeID]struct{}

	closedAt map[uint64][]ledger.Hash
	forked   map[uint64]struct{}

	pending   map[ledger.Hash]*pendingTx
	suspected int
	starved   int

	// propRound buffers the current round's per-validator proposal sets;
	// propSeq is the round it belongs to. The buffer is diffed into the
	// pending table when the round ends (its close arrives, or the next
	// round's proposals start).
	propRound map[addr.NodeID]map[ledger.Hash]struct{}
	propSeq   uint64

	firstValSeq  uint64
	maxValSeq    uint64
	lastCloseSeq uint64
	anyClose     bool
	stallAlarms  int
	stallRaised  bool

	late      int
	lateSeen  map[nodeSeq]struct{}
	alerts    []Alert
	allAlerts int
}

// NewDetector creates a detector; zero config fields take defaults.
func NewDetector(cfg DetectorConfig) *Detector {
	if cfg.CensorshipCloses == 0 {
		cfg.CensorshipCloses = 5
	}
	if cfg.StallSequences == 0 {
		cfg.StallSequences = 10
	}
	return &Detector{
		cfg:          cfg,
		seen:         make(map[dedupKey]struct{}),
		sigsAt:       make(map[nodeSeq][]ledger.Hash),
		equivocators: make(map[addr.NodeID]struct{}),
		closedAt:     make(map[uint64][]ledger.Hash),
		forked:       make(map[uint64]struct{}),
		pending:      make(map[ledger.Hash]*pendingTx),
		propRound:    make(map[addr.NodeID]map[ledger.Hash]struct{}),
		lateSeen:     make(map[nodeSeq]struct{}),
	}
}

// AttackSummary aggregates the detector's findings.
type AttackSummary struct {
	// Equivocations counts conflicting page hashes beyond the first per
	// (validator, sequence); EquivocatingValidators counts the culprits.
	Equivocations          int
	EquivocatingValidators int
	// ForkedSequences counts sequences with two fully validated pages.
	ForkedSequences int
	// SuspectedCensoredTxs counts transactions proposed but not closed
	// within CensorshipCloses subsequent closes whose per-validator
	// proposal diff shows a consistent omitter — targeted censorship.
	// Streams without per-validator proposal events count every expired
	// transaction here (the legacy, over-reporting behavior — they carry
	// no signal to tell the cases apart).
	SuspectedCensoredTxs int
	// StarvedTxs counts transactions that expired unclosed with NO
	// consistent omitter in their proposal diffs: collateral damage of a
	// liveness failure rather than a censor's targets.
	StarvedTxs int
	// StallAlarms counts liveness alarms: the stream advanced
	// StallSequences past the last fully validated close.
	StallAlarms int
	// LateValidations counts validations trailing the sequence
	// high-water mark — delayed proposers.
	LateValidations int
	// DedupedEvents counts exact duplicate events dropped before the
	// Figure 2 totals.
	DedupedEvents uint64
	// Alerts is the total number of alerts raised.
	Alerts int
}

// Attacked reports whether any attack indicator fired. Duplicates are
// transport noise, not an attack, and do not count.
func (s AttackSummary) Attacked() bool {
	return s.Equivocations > 0 || s.ForkedSequences > 0 ||
		s.SuspectedCensoredTxs > 0 || s.StarvedTxs > 0 ||
		s.StallAlarms > 0 || s.LateValidations > 0
}

// Summary returns the findings so far.
func (d *Detector) Summary() AttackSummary {
	return AttackSummary{
		Equivocations:          d.equivocations,
		EquivocatingValidators: len(d.equivocators),
		ForkedSequences:        len(d.forked),
		SuspectedCensoredTxs:   d.suspected,
		StarvedTxs:             d.starved,
		StallAlarms:            d.stallAlarms,
		LateValidations:        d.late,
		DedupedEvents:          d.deduped,
		Alerts:                 d.allAlerts,
	}
}

// Alerts returns the retained alerts (the first maxStoredAlerts).
func (d *Detector) Alerts() []Alert { return d.alerts }

func (d *Detector) raise(a Alert) {
	d.allAlerts++
	if len(d.alerts) < maxStoredAlerts {
		d.alerts = append(d.alerts, a)
	}
	if d.cfg.OnAlert != nil {
		d.cfg.OnAlert(a)
	}
}

// duplicate reports (and counts) whether the event replays one already
// observed. The collector calls it before recording anything.
func (d *Detector) duplicate(ev consensus.Event) bool {
	h := fnv.New64a()
	h.Write(ev.Signature)
	for _, tx := range ev.TxHashes {
		h.Write(tx[:])
	}
	key := dedupKey{kind: ev.Kind, node: ev.Node, seq: ev.Seq, hash: ev.LedgerHash, digest: h.Sum64()}
	if _, ok := d.seen[key]; ok {
		d.deduped++
		return true
	}
	d.seen[key] = struct{}{}
	return false
}

// observeValidation checks one validation for equivocation, lateness,
// and liveness stall.
func (d *Detector) observeValidation(ev consensus.Event) {
	ns := nodeSeq{ev.Node, ev.Seq}

	// Late: the sequence trails the stream's high-water mark. A benign
	// validator broadcasts within its round, before any higher sequence
	// appears; only a delayed proposer's signature shows up afterwards.
	if ev.Seq < d.maxValSeq {
		if _, ok := d.lateSeen[ns]; !ok {
			d.lateSeen[ns] = struct{}{}
			d.late++
			d.raise(Alert{
				Kind: AlertLateValidation, Node: ev.Node, Seq: ev.Seq,
				Detail: fmt.Sprintf("validator %s validated seq %d after the stream reached seq %d — delayed proposer",
					ev.Node.Short(), ev.Seq, d.maxValSeq),
			})
		}
	}
	if d.firstValSeq == 0 || ev.Seq < d.firstValSeq {
		d.firstValSeq = ev.Seq
	}
	if ev.Seq > d.maxValSeq {
		d.maxValSeq = ev.Seq
	}

	// Equivocation: a second distinct hash at one (validator, sequence).
	prev := d.sigsAt[ns]
	for _, h := range prev {
		if h == ev.LedgerHash {
			return
		}
	}
	d.sigsAt[ns] = append(prev, ev.LedgerHash)
	if len(prev) > 0 {
		d.equivocations++
		d.equivocators[ev.Node] = struct{}{}
		d.raise(Alert{
			Kind: AlertEquivocation, Node: ev.Node, Seq: ev.Seq,
			Hashes: append(append([]ledger.Hash(nil), prev...), ev.LedgerHash),
			Detail: fmt.Sprintf("validator %s double-signed seq %d (%d conflicting hashes)",
				ev.Node.Short(), ev.Seq, len(prev)+1),
		})
	}

	d.checkStall()
}

// observeClose checks one ledger close for divergent chains, advances
// the liveness watermark, and sweeps the censorship suspicion table.
func (d *Detector) observeClose(ev consensus.Event) {
	// The close ends the round: fold its buffered per-validator
	// proposals into the pending diffs before sweeping.
	d.flushProposalRound()
	prev := d.closedAt[ev.Seq]
	known := false
	for _, h := range prev {
		if h == ev.LedgerHash {
			known = true
			break
		}
	}
	if !known {
		d.closedAt[ev.Seq] = append(prev, ev.LedgerHash)
		if len(prev) > 0 {
			d.forked[ev.Seq] = struct{}{}
			d.raise(Alert{
				Kind: AlertFork, Seq: ev.Seq,
				Hashes: append(append([]ledger.Hash(nil), prev...), ev.LedgerHash),
				Detail: fmt.Sprintf("two fully validated ledgers at seq %d — committed fork", ev.Seq),
			})
		}
	}

	if ev.Seq > d.lastCloseSeq {
		d.lastCloseSeq = ev.Seq
	}
	d.anyClose = true
	if d.gap() < uint64(d.cfg.StallSequences) {
		d.stallRaised = false
	}

	// Censorship sweep: every pending proposed transaction either closed
	// in this page or survived one more close without closing.
	closed := make(map[ledger.Hash]struct{}, len(ev.TxHashes))
	for _, h := range ev.TxHashes {
		closed[h] = struct{}{}
	}
	for txh, p := range d.pending {
		if _, ok := closed[txh]; ok {
			delete(d.pending, txh)
			continue
		}
		p.closes++
		if !p.alerted && p.closes >= d.cfg.CensorshipCloses {
			p.alerted = true
			if culprit, targeted := p.culprit(); targeted {
				d.suspected++
				d.raise(Alert{
					Kind: AlertCensorship, Seq: ev.Seq, TxHash: txh, Node: culprit,
					Detail: fmt.Sprintf("tx %x… proposed at seq %d still unclosed after %d closes; validator %s omitted it in all %d diffed rounds — targeted censorship",
						txh[:4], p.firstSeq, p.closes, culprit.Short(), p.diffRounds),
				})
			} else if p.perValidator {
				d.starved++
				d.raise(Alert{
					Kind: AlertStarvation, Seq: ev.Seq, TxHash: txh,
					Detail: fmt.Sprintf("tx %x… proposed at seq %d still unclosed after %d closes with no consistent omitter — liveness starvation, not targeted censorship",
						txh[:4], p.firstSeq, p.closes),
				})
			} else {
				// Metadata-only stream: no per-validator proposals to
				// diff, so every expired tx stays a censorship suspect.
				d.suspected++
				d.raise(Alert{
					Kind: AlertCensorship, Seq: ev.Seq, TxHash: txh,
					Detail: fmt.Sprintf("tx %x… proposed at seq %d still unclosed after %d closes — suspected censorship",
						txh[:4], p.firstSeq, p.closes),
				})
			}
		}
	}
}

// observeProposal registers the round's candidate transactions for the
// censorship sweep. Aggregate events (no Node) only register; events
// carrying a Node additionally buffer that proposer's set for the
// round's per-validator diff.
func (d *Detector) observeProposal(ev consensus.Event) {
	if ev.Node != (addr.NodeID{}) {
		if ev.Seq != d.propSeq {
			d.flushProposalRound()
			d.propSeq = ev.Seq
		}
		set := d.propRound[ev.Node]
		if set == nil {
			set = make(map[ledger.Hash]struct{}, len(ev.TxHashes))
			d.propRound[ev.Node] = set
		}
		for _, h := range ev.TxHashes {
			set[h] = struct{}{}
		}
	}
	for _, txh := range ev.TxHashes {
		if _, ok := d.pending[txh]; !ok {
			d.pending[txh] = &pendingTx{firstSeq: ev.Seq}
		}
	}
}

// flushProposalRound diffs the buffered round's per-validator proposal
// sets into the pending table: for each pending transaction that some
// buffered proposer included and another omitted, the round counts as
// diffed and every buffered proposer lands on its side of the tally. A
// proposer that broadcast nothing is absent from the buffer entirely
// (the network skips empty sets), so a stalled validator never counts
// as an omitter — that is precisely the censor/starvation distinction.
func (d *Detector) flushProposalRound() {
	if len(d.propRound) == 0 {
		return
	}
	for txh, p := range d.pending {
		proposers := 0
		for _, set := range d.propRound {
			if _, ok := set[txh]; ok {
				proposers++
			}
		}
		if proposers == 0 {
			continue
		}
		p.perValidator = true
		if proposers == len(d.propRound) {
			continue // unanimous: nothing to diff
		}
		p.diffRounds++
		if p.omits == nil {
			p.omits = make(map[addr.NodeID]int)
			p.proposes = make(map[addr.NodeID]int)
		}
		for node, set := range d.propRound {
			if _, ok := set[txh]; ok {
				p.proposes[node]++
			} else {
				p.omits[node]++
			}
		}
	}
	clear(d.propRound)
}

// gap is how many sequences the validation stream has advanced past the
// last fully validated close (from the first observed sequence when no
// close has been seen yet, so a mid-stream subscription does not alarm
// on history it never saw).
func (d *Detector) gap() uint64 {
	base := d.lastCloseSeq
	if !d.anyClose {
		if d.firstValSeq == 0 {
			return 0
		}
		base = d.firstValSeq - 1
	}
	if d.maxValSeq <= base {
		return 0
	}
	return d.maxValSeq - base
}

func (d *Detector) checkStall() {
	if d.stallRaised {
		return
	}
	if g := d.gap(); g >= uint64(d.cfg.StallSequences) {
		d.stallRaised = true
		d.stallAlarms++
		detail := fmt.Sprintf("no fully validated ledger for %d sequences (stream at seq %d, last close seq %d)",
			g, d.maxValSeq, d.lastCloseSeq)
		if !d.anyClose {
			detail = fmt.Sprintf("no fully validated ledger in %d observed sequences (stream at seq %d)", g, d.maxValSeq)
		}
		d.raise(Alert{Kind: AlertStall, Seq: d.maxValSeq, Detail: detail})
	}
}
