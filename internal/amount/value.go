package amount

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"strconv"
	"strings"
)

// Value is a signed decimal floating-point number mirroring the semantics
// of rippled's STAmount for issued currencies: a 16-digit mantissa and a
// decimal exponent. All issued-currency balances, trust limits, offer
// amounts, and payment amounts in this repository are Values.
//
// A non-zero Value is kept normalized: mantissa in [MinMantissa,
// MaxMantissa] and exponent in [MinExponent, MaxExponent]. The zero value
// of the struct represents the number zero and is ready to use.
type Value struct {
	negative bool
	mantissa uint64 // 0, or in [MinMantissa, MaxMantissa]
	exponent int16  // 0 when mantissa == 0
}

// Normalization bounds, identical to rippled's STAmount.
const (
	MinMantissa uint64 = 1000_0000_0000_0000 // 1e15
	MaxMantissa uint64 = 9999_9999_9999_9999 // 1e16 - 1
	MinExponent        = -96
	MaxExponent        = 80
)

// ErrOverflow is returned when an arithmetic result exceeds the
// representable range. Results below the representable range underflow to
// zero rather than erroring, matching rippled.
var ErrOverflow = errors.New("amount: value overflow")

// ErrDivisionByZero is returned by Div when the divisor is zero.
var ErrDivisionByZero = errors.New("amount: division by zero")

var pow10 = [...]uint64{
	1, 10, 100, 1000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000,
	1_000_000_000, 10_000_000_000, 100_000_000_000, 1_000_000_000_000,
	10_000_000_000_000, 100_000_000_000_000, 1_000_000_000_000_000,
	10_000_000_000_000_000, 100_000_000_000_000_000, 1_000_000_000_000_000_000,
}

// Zero is the zero Value.
var Zero Value

// newNormalized builds a Value from an unnormalized mantissa/exponent pair,
// normalizing and handling underflow (to zero) and overflow (error).
func newNormalized(negative bool, mantissa uint64, exponent int) (Value, error) {
	if mantissa == 0 {
		return Value{}, nil
	}
	for mantissa < MinMantissa {
		if exponent <= MinExponent {
			return Value{}, nil // underflow to zero
		}
		mantissa *= 10
		exponent--
	}
	for mantissa > MaxMantissa {
		rem := mantissa % 10
		mantissa /= 10
		if rem >= 5 {
			mantissa++ // round half away from zero
		}
		exponent++
	}
	// Rounding may have pushed the mantissa past the bound again
	// (…9999 + 1), in which case one more division is exact enough.
	if mantissa > MaxMantissa {
		mantissa /= 10
		exponent++
	}
	if exponent > MaxExponent {
		return Value{}, ErrOverflow
	}
	if exponent < MinExponent {
		return Value{}, nil
	}
	return Value{negative: negative, mantissa: mantissa, exponent: int16(exponent)}, nil
}

// NewValue returns the Value mantissa × 10^exponent.
func NewValue(mantissa int64, exponent int) (Value, error) {
	neg := mantissa < 0
	m := uint64(mantissa)
	if neg {
		m = uint64(-mantissa)
	}
	return newNormalized(neg, m, exponent)
}

// MustValue is like NewValue but panics on overflow. Intended for constants
// and tests.
func MustValue(mantissa int64, exponent int) Value {
	v, err := NewValue(mantissa, exponent)
	if err != nil {
		panic(err)
	}
	return v
}

// FromInt64 returns the Value representing i exactly (i has at most 19
// digits, which normalization rounds to 16 significant digits).
func FromInt64(i int64) Value {
	v, err := NewValue(i, 0)
	if err != nil {
		panic(err) // unreachable: int64 range is far within bounds
	}
	return v
}

// FromFloat64 converts f to a Value with up to 15 significant decimal
// digits. NaN and infinities are rejected.
func FromFloat64(f float64) (Value, error) {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return Value{}, fmt.Errorf("amount: cannot represent %v", f)
	}
	return Parse(strconv.FormatFloat(f, 'e', 15, 64))
}

// IsZero reports whether v is zero.
func (v Value) IsZero() bool { return v.mantissa == 0 }

// Sign returns -1, 0, or +1 according to the sign of v.
func (v Value) Sign() int {
	switch {
	case v.mantissa == 0:
		return 0
	case v.negative:
		return -1
	default:
		return 1
	}
}

// IsNegative reports whether v < 0.
func (v Value) IsNegative() bool { return v.Sign() < 0 }

// IsPositive reports whether v > 0.
func (v Value) IsPositive() bool { return v.Sign() > 0 }

// Mantissa returns the normalized mantissa of v (0 for zero).
func (v Value) Mantissa() uint64 { return v.mantissa }

// Exponent returns the normalized exponent of v (0 for zero).
func (v Value) Exponent() int { return int(v.exponent) }

// Neg returns -v.
func (v Value) Neg() Value {
	if v.mantissa == 0 {
		return Value{}
	}
	v.negative = !v.negative
	return v
}

// Abs returns |v|.
func (v Value) Abs() Value {
	v.negative = false
	return v
}

// Cmp compares v and w, returning -1 if v < w, 0 if v == w, +1 if v > w.
func (v Value) Cmp(w Value) int {
	vs, ws := v.Sign(), w.Sign()
	switch {
	case vs < ws:
		return -1
	case vs > ws:
		return 1
	case vs == 0:
		return 0
	}
	// Same non-zero sign. Compare magnitudes; invert for negatives.
	mag := v.cmpMagnitude(w)
	if vs < 0 {
		return -mag
	}
	return mag
}

func (v Value) cmpMagnitude(w Value) int {
	switch {
	case v.exponent < w.exponent:
		return -1
	case v.exponent > w.exponent:
		return 1
	case v.mantissa < w.mantissa:
		return -1
	case v.mantissa > w.mantissa:
		return 1
	default:
		return 0
	}
}

// Equal reports whether v == w.
func (v Value) Equal(w Value) bool { return v == w }

// Less reports whether v < w.
func (v Value) Less(w Value) bool { return v.Cmp(w) < 0 }

// Add returns v + w.
func (v Value) Add(w Value) (Value, error) {
	if v.mantissa == 0 {
		return w, nil
	}
	if w.mantissa == 0 {
		return v, nil
	}
	// Bring both operands to the larger exponent, scaling the smaller
	// operand's mantissa down with round-to-nearest. Precision loss is at
	// most half an ulp of the larger operand, as in rippled.
	a, b := v, w
	if a.exponent < b.exponent {
		a, b = b, a
	}
	diff := int(a.exponent) - int(b.exponent)
	var bm uint64
	if diff < len(pow10) {
		d := pow10[diff]
		bm = b.mantissa / d
		if b.mantissa%d >= d/2 && d > 1 {
			bm++
		}
	}
	// Signed addition of magnitudes at exponent a.exponent.
	am := int64(a.mantissa)
	if a.negative {
		am = -am
	}
	bms := int64(bm)
	if b.negative {
		bms = -bms
	}
	sum := am + bms // |am|,|bms| < 1e16, no overflow
	neg := sum < 0
	mag := uint64(sum)
	if neg {
		mag = uint64(-sum)
	}
	return newNormalized(neg, mag, int(a.exponent))
}

// Sub returns v - w.
func (v Value) Sub(w Value) (Value, error) { return v.Add(w.Neg()) }

// Mul returns v × w with 16 significant digits.
func (v Value) Mul(w Value) (Value, error) {
	if v.mantissa == 0 || w.mantissa == 0 {
		return Value{}, nil
	}
	hi, lo := bits.Mul64(v.mantissa, w.mantissa)
	// Divide the 128-bit product by 1e16 to renormalize the mantissa.
	const scale = 10_000_000_000_000_000 // 1e16
	q, r := bits.Div64(hi, lo, scale)
	if r >= scale/2 {
		q++
	}
	return newNormalized(v.negative != w.negative, q, int(v.exponent)+int(w.exponent)+16)
}

// Div returns v ÷ w with 16 significant digits.
func (v Value) Div(w Value) (Value, error) {
	if w.mantissa == 0 {
		return Value{}, ErrDivisionByZero
	}
	if v.mantissa == 0 {
		return Value{}, nil
	}
	// (v.mantissa × 1e16) ÷ w.mantissa keeps 16-17 significant digits.
	const scale = 10_000_000_000_000_000 // 1e16
	hi, lo := bits.Mul64(v.mantissa, scale)
	q, r := bits.Div64(hi, lo, w.mantissa)
	if r >= w.mantissa/2 {
		q++
	}
	return newNormalized(v.negative != w.negative, q, int(v.exponent)-int(w.exponent)-16)
}

// Min returns the smaller of v and w.
func (v Value) Min(w Value) Value {
	if v.Cmp(w) <= 0 {
		return v
	}
	return w
}

// Max returns the larger of v and w.
func (v Value) Max(w Value) Value {
	if v.Cmp(w) >= 0 {
		return v
	}
	return w
}

// RoundToPow10 rounds v to the nearest integral multiple of 10^p, rounding
// half away from zero. This is the Table I rounding primitive: for example,
// RoundToPow10(2) rounds to the closest hundred and RoundToPow10(-2) to the
// closest cent. Values smaller than half of 10^p round to zero.
func (v Value) RoundToPow10(p int) Value {
	if v.mantissa == 0 {
		return Value{}
	}
	e := int(v.exponent)
	if e >= p {
		return v // already an integral multiple of 10^p
	}
	d := p - e // digits to drop
	if d >= len(pow10) {
		return Value{}
	}
	div := pow10[d]
	k := v.mantissa / div
	if v.mantissa%div >= (div+1)/2 {
		k++
	}
	out, err := newNormalized(v.negative, k, p)
	if err != nil {
		// Unreachable: rounding can only shrink the magnitude's digit
		// count, never push the exponent past MaxExponent by more than
		// normalization absorbs.
		panic(err)
	}
	return out
}

// pow10f memoizes math.Pow(10, e) for every normalized exponent.
// Float64 runs per payment on analysis hot paths (histogram bucketing,
// currency totals); the table is built with math.Pow itself, so lookups
// are bit-identical to the direct call.
var pow10f = func() (t [MaxExponent - MinExponent + 1]float64) {
	for i := range t {
		t[i] = math.Pow(10, float64(MinExponent+i))
	}
	return
}()

// Float64 returns the closest float64 to v. Analysis code (survival
// functions, histograms) uses this lossy view; ledger state never does.
func (v Value) Float64() float64 {
	if v.mantissa == 0 {
		return 0
	}
	f := float64(v.mantissa) * pow10f[int(v.exponent)-MinExponent]
	if v.negative {
		return -f
	}
	return f
}

// Parse parses a decimal string such as "42", "-3.14", "4.5", or
// "1.2e-5" into a Value.
func Parse(s string) (Value, error) {
	orig := s
	if s == "" {
		return Value{}, errors.New("amount: empty value string")
	}
	neg := false
	switch s[0] {
	case '+':
		s = s[1:]
	case '-':
		neg = true
		s = s[1:]
	}
	// Split off the exponent part.
	expPart := 0
	if i := strings.IndexAny(s, "eE"); i >= 0 {
		e, err := strconv.Atoi(s[i+1:])
		if err != nil {
			return Value{}, fmt.Errorf("amount: bad exponent in %q", orig)
		}
		expPart = e
		s = s[:i]
	}
	intPart, fracPart := s, ""
	if i := strings.IndexByte(s, '.'); i >= 0 {
		intPart, fracPart = s[:i], s[i+1:]
	}
	if intPart == "" && fracPart == "" {
		return Value{}, fmt.Errorf("amount: no digits in %q", orig)
	}
	var mantissa uint64
	exp := expPart
	digits := 0
	consume := func(part string, fraction bool) error {
		for i := 0; i < len(part); i++ {
			c := part[i]
			if c < '0' || c > '9' {
				return fmt.Errorf("amount: bad digit %q in %q", c, orig)
			}
			if digits >= 17 {
				// Further digits only shift the exponent (integer part)
				// or are dropped (fraction part).
				if !fraction {
					exp++
				}
				continue
			}
			mantissa = mantissa*10 + uint64(c-'0')
			if mantissa > 0 {
				digits++
			}
			if fraction {
				exp--
			}
		}
		return nil
	}
	if err := consume(intPart, false); err != nil {
		return Value{}, err
	}
	if err := consume(fracPart, true); err != nil {
		return Value{}, err
	}
	return newNormalized(neg, mantissa, exp)
}

// MustParse is like Parse but panics on error. Intended for tests and
// constants.
func MustParse(s string) Value {
	v, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return v
}

// String renders v as a plain decimal where practical, falling back to
// scientific notation for extreme exponents.
func (v Value) String() string {
	if v.mantissa == 0 {
		return "0"
	}
	digits := strconv.FormatUint(v.mantissa, 10)
	// Strip trailing zeros from the significand, folding them into the
	// exponent, so 5000000000000000e-15 prints as "5".
	e := int(v.exponent)
	for len(digits) > 1 && digits[len(digits)-1] == '0' {
		digits = digits[:len(digits)-1]
		e++
	}
	var b strings.Builder
	if v.negative {
		b.WriteByte('-')
	}
	// pointPos is the number of significand digits before the decimal
	// point when written without an exponent.
	pointPos := len(digits) + e
	switch {
	case e >= 0 && pointPos <= 21:
		// Integral: digits followed by e zeros.
		b.WriteString(digits)
		for i := 0; i < e; i++ {
			b.WriteByte('0')
		}
	case pointPos > 0 && pointPos <= 21:
		b.WriteString(digits[:pointPos])
		b.WriteByte('.')
		b.WriteString(digits[pointPos:])
	case pointPos <= 0 && pointPos > -6:
		b.WriteString("0.")
		for i := 0; i < -pointPos; i++ {
			b.WriteByte('0')
		}
		b.WriteString(digits)
	default:
		// Scientific notation.
		b.WriteString(digits[:1])
		if len(digits) > 1 {
			b.WriteByte('.')
			b.WriteString(digits[1:])
		}
		b.WriteByte('e')
		b.WriteString(strconv.Itoa(pointPos - 1))
	}
	return b.String()
}

// MarshalText implements encoding.TextMarshaler.
func (v Value) MarshalText() ([]byte, error) { return []byte(v.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (v *Value) UnmarshalText(text []byte) error {
	parsed, err := Parse(string(text))
	if err != nil {
		return err
	}
	*v = parsed
	return nil
}
