package consensus

import (
	"fmt"
	"math/rand"
	"time"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/ledger"
	"ripplestudy/internal/payment"
)

// Config parameterizes a consensus network.
type Config struct {
	// Thresholds is the rising agreement schedule of the proposal
	// phase. rippled raises the required majority across proposal
	// iterations; the analyses of the protocol ([7], [8] in the paper)
	// led to the current 80% final quorum.
	Thresholds []float64
	// ValidationQuorum is the fraction of the trusted list whose
	// signatures make a page fully validated (0.8 in Ripple).
	ValidationQuorum float64
	// TxDropRate is the probability that a candidate transaction fails
	// to reach one validator before proposals start (network
	// propagation loss) — the source of disputes.
	TxDropRate float64
	// CloseInterval is the simulated wall-clock time between ledger
	// closes ("paying someone ... takes, on average, from 5 to 10
	// seconds").
	CloseInterval time.Duration
	// Seed drives all randomness in the simulation.
	Seed int64
	// StartTime anchors the simulated clock.
	StartTime time.Time
	// StreamPages attaches the canonical encoding of each validated
	// page to its EventLedgerClosed event, so stream consumers can
	// materialize transaction-level views without a separate ledger
	// fetch path.
	StreamPages bool
}

// DefaultConfig returns the production-like parameters.
func DefaultConfig() Config {
	return Config{
		Thresholds:       []float64{0.5, 0.65, 0.7, 0.95},
		ValidationQuorum: 0.8,
		TxDropRate:       0.02,
		CloseInterval:    5 * time.Second,
		Seed:             1,
		StartTime:        time.Date(2015, 12, 1, 0, 0, 0, 0, time.UTC),
	}
}

// EventKind discriminates stream events.
type EventKind int

const (
	// EventValidation is one validator's signed validation of a page.
	EventValidation EventKind = iota + 1
	// EventLedgerClosed announces a fully validated main-chain page.
	EventLedgerClosed
)

// Event is one entry of the validation stream — the data source the
// paper's collection server subscribed to.
type Event struct {
	Kind EventKind `json:"kind"`
	// StreamSeq is the event's position in the emitting network's
	// stream, assigned monotonically from 1. It lets collectors detect
	// gaps, deduplicate replays after a reconnect, and resume a broken
	// subscription from the last event they saw.
	StreamSeq uint64 `json:"stream_seq,omitempty"`
	// Seq is the ledger sequence the event refers to.
	Seq uint64 `json:"seq"`
	// LedgerHash is the page hash signed (validations) or committed
	// (closes).
	LedgerHash ledger.Hash `json:"ledger_hash"`
	// Node identifies the signing validator (validations only).
	Node addr.NodeID `json:"node,omitempty"`
	// Signature is the validator's signature over the page hash.
	Signature []byte `json:"signature,omitempty"`
	// Time is the simulated time of the event.
	Time time.Time `json:"time"`
	// TxCount is the number of transactions sealed (closes only).
	TxCount int `json:"tx_count,omitempty"`
	// PageData is the canonical encoding of the sealed page, attached
	// to EventLedgerClosed when the network runs with StreamPages —
	// the rippled "ledger stream with transactions" a live analytics
	// consumer (internal/serve) materializes views from. Empty for
	// validation events and metadata-only streams.
	PageData []byte `json:"page_data,omitempty"`
}

// Page decodes the sealed page attached to a ledger-close event.
// It returns (nil, nil) when the event carries no page payload.
func (ev Event) Page() (*ledger.Page, error) {
	if len(ev.PageData) == 0 {
		return nil, nil
	}
	p, used, err := ledger.DecodePage(ev.PageData)
	if err != nil {
		return nil, err
	}
	if used != len(ev.PageData) {
		return nil, fmt.Errorf("consensus: %d trailing bytes after page %d payload", len(ev.PageData)-used, p.Header.Sequence)
	}
	return p, nil
}

// RoundResult summarizes one consensus round.
type RoundResult struct {
	Page          *ledger.Page
	Validated     bool
	Validations   int // signatures matching the canonical page
	ProposalIters int
	Deferred      []*ledger.Tx // transactions that failed to converge
}

// Network simulates the validator network plus the canonical ledger
// state machine. It is not safe for concurrent use.
type Network struct {
	cfg        Config
	rng        *rand.Rand
	validators []*validator

	engine *payment.Engine
	chain  *ledger.Chain

	// testnet: the parallel chain the test-net cluster validates.
	testChain *ledger.Chain

	round int
	now   time.Time

	streamSeq   uint64
	subscribers []func(Event)
}

// NewNetwork creates a network with the given validators over a fresh
// genesis state.
func NewNetwork(cfg Config, specs []ValidatorSpec) *Network {
	if cfg.ValidationQuorum == 0 {
		cfg.ValidationQuorum = 0.8
	}
	if len(cfg.Thresholds) == 0 {
		cfg.Thresholds = DefaultConfig().Thresholds
	}
	if cfg.CloseInterval == 0 {
		cfg.CloseInterval = 5 * time.Second
	}
	if cfg.StartTime.IsZero() {
		cfg.StartTime = DefaultConfig().StartTime
	}
	n := &Network{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		engine:    payment.NewEngine(),
		chain:     ledger.NewChain(ledger.Genesis("main", ledger.CloseTimeFromTime(cfg.StartTime))),
		testChain: ledger.NewChain(ledger.Genesis("testnet", ledger.CloseTimeFromTime(cfg.StartTime))),
		now:       cfg.StartTime,
	}
	for _, spec := range specs {
		n.validators = append(n.validators, newValidator(spec))
	}
	return n
}

// Engine exposes the canonical state machine (e.g. to fund accounts
// before a simulation).
func (n *Network) Engine() *payment.Engine { return n.engine }

// Chain exposes the canonical main chain.
func (n *Network) Chain() *ledger.Chain { return n.chain }

// TestChain exposes the parallel test-net chain.
func (n *Network) TestChain() *ledger.Chain { return n.testChain }

// Round returns the number of completed rounds.
func (n *Network) Round() int { return n.round }

// Now returns the simulated clock.
func (n *Network) Now() time.Time { return n.now }

// Subscribe registers a stream consumer. Events are delivered
// synchronously during RunRound, in deterministic order.
func (n *Network) Subscribe(fn func(Event)) { n.subscribers = append(n.subscribers, fn) }

func (n *Network) emit(ev Event) {
	n.streamSeq++
	ev.StreamSeq = n.streamSeq
	for _, fn := range n.subscribers {
		fn(ev)
	}
}

// EventsEmitted returns the stream sequence number of the last emitted
// event (the total number of events the network has published).
func (n *Network) EventsEmitted() uint64 { return n.streamSeq }

// Disable takes validators down (hijack or DoS): they stop proposing and
// signing, but remain on the trusted lists and keep counting against the
// validation quorum. It returns how many validators matched.
func (n *Network) Disable(labels ...string) int {
	hit := 0
	for _, v := range n.validators {
		for _, l := range labels {
			if v.spec.Label == l || v.DisplayName() == l {
				v.disabled = true
				hit++
			}
		}
	}
	return hit
}

// DisableTopActives takes down the k first trusted active validators —
// the paper's attack on "the majority of these validators".
func (n *Network) DisableTopActives(k int) int {
	hit := 0
	for _, v := range n.validators {
		if hit == k {
			break
		}
		if v.spec.Behavior == BehaviorActive && v.spec.Trusted && !v.disabled {
			v.disabled = true
			hit++
		}
	}
	return hit
}

// Validators returns the display names of all configured validators, for
// reports.
func (n *Network) Validators() []string {
	out := make([]string, len(n.validators))
	for i, v := range n.validators {
		out[i] = v.DisplayName()
	}
	return out
}

// NodeIDOf returns the node ID for a configured validator label, for
// tests and registries.
func (n *Network) NodeIDOf(label string) (addr.NodeID, bool) {
	for _, v := range n.validators {
		if v.spec.Label == label || v.DisplayName() == label {
			return v.id, true
		}
	}
	return addr.NodeID{}, false
}

// RunRound executes one full consensus round over the candidate
// transactions: proposal convergence, canonical application, validation
// broadcast, and the parallel test-net close. Deferred transactions (ones
// that failed to reach agreement) are reported for resubmission.
func (n *Network) RunRound(candidates []*ledger.Tx) (*RoundResult, error) {
	n.round++
	n.now = n.now.Add(n.cfg.CloseInterval)

	// Gather the active validators present this round.
	var actives []*validator
	for _, v := range n.validators {
		if v.spec.Behavior == BehaviorActive && !v.disabled && v.present(n.round) && n.rng.Float64() < v.spec.Availability {
			actives = append(actives, v)
		}
	}

	agreed, iters := n.proposalPhase(actives, candidates)
	var deferred []*ledger.Tx
	agreedSet := make(map[ledger.Hash]bool, len(agreed))
	for _, tx := range agreed {
		agreedSet[tx.Hash()] = true
	}
	for _, tx := range candidates {
		if !agreedSet[tx.Hash()] {
			deferred = append(deferred, tx)
		}
	}

	// Apply the agreed set to the canonical state machine.
	page, err := n.closeMainPage(agreed)
	if err != nil {
		return nil, err
	}

	// Close the parallel test-net page (empty traffic).
	testPage, err := closeEmptyPage(n.testChain, n.now)
	if err != nil {
		return nil, err
	}

	// Validation broadcast. The quorum denominator is the trusted list
	// itself (UNLs are configuration, not liveness): a validator that is
	// merely offline — or hijacked — still counts against the 80%
	// requirement. Validators outside their join/leave window have been
	// retired from operators' lists and do not count.
	canonical := page.Header.Hash()
	matching := 0
	trustedTotal := 0
	for _, v := range n.validators {
		if !v.present(n.round) {
			continue
		}
		if v.spec.Trusted && v.spec.Behavior == BehaviorActive {
			trustedTotal++
		}
		if v.disabled || n.rng.Float64() >= v.spec.Availability {
			continue
		}
		signed := n.validationHashFor(v, page, testPage)
		if signed.IsZero() {
			continue
		}
		// Only trusted (UNL) validations count towards the quorum;
		// anyone can broadcast validations, but rippled only tallies
		// its configured list.
		if signed == canonical && v.spec.Trusted {
			matching++
		}
		n.emit(Event{
			Kind:       EventValidation,
			Seq:        page.Header.Sequence,
			LedgerHash: signed,
			Node:       v.id,
			Signature:  v.key.Sign(signed[:]),
			Time:       n.now,
		})
	}

	quorum := int(float64(trustedTotal)*n.cfg.ValidationQuorum + 0.999999)
	validated := trustedTotal > 0 && matching >= quorum
	if validated {
		ev := Event{
			Kind:       EventLedgerClosed,
			Seq:        page.Header.Sequence,
			LedgerHash: canonical,
			Time:       n.now,
			TxCount:    len(page.Txs),
		}
		if n.cfg.StreamPages {
			ev.PageData = page.Encode(nil)
		}
		n.emit(ev)
	}

	return &RoundResult{
		Page:          page,
		Validated:     validated,
		Validations:   matching,
		ProposalIters: iters,
		Deferred:      deferred,
	}, nil
}

// proposalPhase runs the avalanche-style dispute resolution: each active
// validator starts from its (lossy) view of the candidate set and
// iteratively keeps a transaction only when the fraction of peers
// proposing it meets the rising threshold. Returns the agreed set and
// the number of iterations used.
func (n *Network) proposalPhase(actives []*validator, candidates []*ledger.Tx) ([]*ledger.Tx, int) {
	if len(actives) == 0 || len(candidates) == 0 {
		return nil, 0
	}
	// proposals[i][j] — does validator i currently propose candidate j.
	proposals := make([][]bool, len(actives))
	for i := range actives {
		proposals[i] = make([]bool, len(candidates))
		for j := range candidates {
			proposals[i][j] = n.rng.Float64() >= n.cfg.TxDropRate
		}
	}
	iters := 0
	for _, threshold := range n.cfg.Thresholds {
		iters++
		next := make([][]bool, len(actives))
		converged := true
		for i := range actives {
			next[i] = make([]bool, len(candidates))
			for j := range candidates {
				votes := 0
				for k := range actives {
					if proposals[k][j] {
						votes++
					}
				}
				keep := float64(votes) >= threshold*float64(len(actives))
				next[i][j] = keep
				if keep != proposals[i][j] {
					converged = false
				}
			}
		}
		proposals = next
		if converged {
			break
		}
	}
	// The final set: transactions every active validator proposes.
	var agreed []*ledger.Tx
	for j, tx := range candidates {
		all := true
		for i := range actives {
			if !proposals[i][j] {
				all = false
				break
			}
		}
		if all {
			agreed = append(agreed, tx)
		}
	}
	return agreed, iters
}

// closeMainPage applies the agreed set to the canonical engine and
// appends the resulting page to the main chain.
func (n *Network) closeMainPage(agreed []*ledger.Tx) (*ledger.Page, error) {
	metas := make([]*ledger.TxMeta, 0, len(agreed))
	for _, tx := range agreed {
		meta, err := n.engine.Apply(tx)
		if err != nil {
			return nil, fmt.Errorf("consensus: applying tx: %w", err)
		}
		metas = append(metas, meta)
	}
	tip := n.chain.Tip()
	page := &ledger.Page{
		Header: ledger.PageHeader{
			Sequence:   tip.Header.Sequence + 1,
			ParentHash: tip.Header.Hash(),
			TxSetHash:  ledger.TxSetHash(agreed),
			StateHash:  n.engine.StateDigest(),
			CloseTime:  ledger.CloseTimeFromTime(n.now),
			TotalDrops: n.engine.TotalDrops(),
		},
		Txs:   agreed,
		Metas: metas,
	}
	if err := n.chain.Append(page); err != nil {
		return nil, fmt.Errorf("consensus: appending page: %w", err)
	}
	return page, nil
}

// closeEmptyPage extends a chain with an empty page.
func closeEmptyPage(c *ledger.Chain, now time.Time) (*ledger.Page, error) {
	tip := c.Tip()
	page := &ledger.Page{
		Header: ledger.PageHeader{
			Sequence:   tip.Header.Sequence + 1,
			ParentHash: tip.Header.Hash(),
			TxSetHash:  ledger.TxSetHash(nil),
			StateHash:  tip.Header.StateHash,
			CloseTime:  ledger.CloseTimeFromTime(now),
			TotalDrops: tip.Header.TotalDrops,
		},
	}
	if err := c.Append(page); err != nil {
		return nil, err
	}
	return page, nil
}

// validationHashFor selects the ledger hash a validator signs this
// round, per its behavior class.
func (n *Network) validationHashFor(v *validator, mainPage, testPage *ledger.Page) ledger.Hash {
	switch v.spec.Behavior {
	case BehaviorActive:
		return mainPage.Header.Hash()
	case BehaviorLaggard:
		if n.rng.Float64() < v.spec.SyncProbability {
			return mainPage.Header.Hash()
		}
		// Out of sync: the laggard's divergent state produces a page
		// hash of its own.
		return ledger.SHA512Half([]byte(fmt.Sprintf("laggard:%s:%d:%d", v.DisplayName(), mainPage.Header.Sequence, n.rng.Int63())))
	case BehaviorForked:
		// A private ledger: deterministic per validator, never on the
		// main chain.
		return ledger.SHA512Half([]byte(fmt.Sprintf("fork:%s:%d", v.DisplayName(), mainPage.Header.Sequence)))
	case BehaviorTestnet:
		return testPage.Header.Hash()
	default:
		return ledger.Hash{}
	}
}

// Run executes `rounds` rounds pulling candidate transactions from next,
// which may return nil for an empty round. Deferred transactions are
// retried in the following round ahead of new traffic.
func (n *Network) Run(rounds int, next func(round int) []*ledger.Tx) ([]*RoundResult, error) {
	results := make([]*RoundResult, 0, rounds)
	var carry []*ledger.Tx
	for i := 1; i <= rounds; i++ {
		candidates := carry
		if next != nil {
			candidates = append(candidates, next(i)...)
		}
		res, err := n.RunRound(candidates)
		if err != nil {
			return results, err
		}
		carry = res.Deferred
		results = append(results, res)
	}
	return results, nil
}
