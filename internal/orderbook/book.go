// Package orderbook implements Ripple's currency-exchange offers and
// order books: the mechanism Market Makers use to bridge currencies.
// Cross-currency payments consume offers ("the path with the best
// exchange rate available"), and same-currency payments may use offers to
// make up for missing direct trust, exactly as the paper's appendix
// describes.
//
// Books are keyed by currency pair. Offers within a book are sorted by
// quality — the ratio TakerPays/TakerGets, i.e. the price the taker pays
// per unit received — best (lowest) first. Consumption is two-phase:
// Quote computes fills without mutating, Apply commits them, which gives
// the payment engine atomicity across multi-step executions.
//
// Quality is memoized when an offer is placed (and refreshed after
// partial fills), so quoting never re-divides amounts on the hot path,
// and a placed Books set can be read concurrently as long as nobody
// mutates it.
package orderbook

import (
	"fmt"
	"sort"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
)

// Offer is one standing exchange offer: the owner sells TakerGets in
// exchange for TakerPays. A taker consuming the whole offer delivers
// TakerPays to the owner and receives TakerGets.
type Offer struct {
	Owner addr.AccountID
	Seq   uint32 // the OfferCreate transaction's sequence, identifies the offer
	Pays  amount.Amount
	Gets  amount.Amount

	// quality memoizes Pays/Gets for placed offers. It is written only
	// under Books mutation (Place / Apply), never lazily on reads, so
	// concurrent readers of an unmutated book set never race.
	quality    amount.Value
	hasQuality bool

	// stamp is the placement tiebreaker: offers sort by (quality, stamp),
	// so equal-quality offers keep arrival order, and book order is a pure
	// function of the standing offer set — any Books holding the same
	// offers with the same stamps quotes identically, which is what lets a
	// checkpoint restore reproduce a live book exactly.
	stamp uint64
}

// Stamp returns the offer's placement stamp (positive once placed).
func (o *Offer) Stamp() uint64 { return o.stamp }

// Quality returns the taker's price: Pays per unit of Gets. Lower is
// better for the taker. For placed offers this is a memoized field read.
func (o *Offer) Quality() amount.Value {
	if o.hasQuality {
		return o.quality
	}
	return o.computeQuality()
}

func (o *Offer) computeQuality() amount.Value {
	q, err := o.Pays.Value.Div(o.Gets.Value)
	if err != nil {
		return amount.Zero // malformed offers sort first and are rejected at Place
	}
	return q
}

// memoQuality (re)derives the memoized quality from the current amounts.
// Called only while the book set is being mutated.
func (o *Offer) memoQuality() {
	o.quality = o.computeQuality()
	o.hasQuality = true
}

// Pair identifies a book: takers pay Pays currency and receive Gets
// currency.
type Pair struct {
	Pays amount.Currency
	Gets amount.Currency
}

// String implements fmt.Stringer.
func (p Pair) String() string { return p.Pays.String() + "→" + p.Gets.String() }

// book is the offer list for one pair, sorted by (quality, stamp)
// ascending.
type book struct {
	offers []*Offer
}

// before reports whether a sorts ahead of b in a book's canonical
// (quality, stamp) order.
func before(a, b *Offer) bool {
	if c := a.quality.Cmp(b.quality); c != 0 {
		return c < 0
	}
	return a.stamp < b.stamp
}

// insert places o at its canonical position.
func (bk *book) insert(o *Offer) {
	idx := sort.Search(len(bk.offers), func(i int) bool {
		return before(o, bk.offers[i])
	})
	bk.offers = append(bk.offers, nil)
	copy(bk.offers[idx+1:], bk.offers[idx:])
	bk.offers[idx] = o
}

// remove drops o (by identity) from the list.
func (bk *book) remove(o *Offer) {
	for i, cand := range bk.offers {
		if cand == o {
			bk.offers = append(bk.offers[:i], bk.offers[i+1:]...)
			return
		}
	}
}

// Books is the full order-book set of the exchange. It is not safe for
// concurrent mutation.
type Books struct {
	byPair  map[Pair]*book
	byOwner map[addr.AccountID]map[uint32]*Offer

	// nextStamp is the last placement stamp issued. Restored offers keep
	// their original stamps and push this forward, so stamps never repeat.
	nextStamp uint64
}

// New creates an empty book set.
func New() *Books {
	return &Books{
		byPair:  make(map[Pair]*book),
		byOwner: make(map[addr.AccountID]map[uint32]*Offer),
	}
}

// checkPlaceable validates an offer before insertion: it must trade
// distinct currencies, carry positive amounts, and not collide with a
// standing offer of the same owner and sequence.
func (b *Books) checkPlaceable(o *Offer) error {
	if o.Pays.Currency == o.Gets.Currency {
		return fmt.Errorf("orderbook: offer trades %s against itself", o.Pays.Currency)
	}
	if !o.Pays.Value.IsPositive() || !o.Gets.Value.IsPositive() {
		return fmt.Errorf("orderbook: offer amounts must be positive: pays %s gets %s", o.Pays, o.Gets)
	}
	if owned := b.byOwner[o.Owner]; owned != nil {
		if _, dup := owned[o.Seq]; dup {
			return fmt.Errorf("orderbook: duplicate offer %s/%d", o.Owner.Short(), o.Seq)
		}
	}
	return nil
}

// insert memoizes quality and indexes the offer in its book and in the
// owner map. The stamp must already be set.
func (b *Books) insert(o *Offer) {
	pair := Pair{Pays: o.Pays.Currency, Gets: o.Gets.Currency}
	bk, ok := b.byPair[pair]
	if !ok {
		bk = &book{}
		b.byPair[pair] = bk
	}
	o.memoQuality()
	bk.insert(o)

	owned, ok := b.byOwner[o.Owner]
	if !ok {
		owned = make(map[uint32]*Offer)
		b.byOwner[o.Owner] = owned
	}
	owned[o.Seq] = o
}

// Place inserts an offer into its book with a fresh placement stamp.
// Offers must sell and buy different currencies and carry positive
// amounts.
func (b *Books) Place(o *Offer) error {
	if err := b.checkPlaceable(o); err != nil {
		return err
	}
	b.nextStamp++
	o.stamp = b.nextStamp
	b.insert(o)
	return nil
}

// PlaceRestored inserts an offer under an existing stamp — the restore
// path from a persisted state tree. Stamps are never reassigned, so a
// restored book reproduces the live book's order exactly; nextStamp
// advances past the largest restored stamp so future placements stay
// unique.
func (b *Books) PlaceRestored(o *Offer, stamp uint64) error {
	if stamp == 0 {
		return fmt.Errorf("orderbook: restored offer %s/%d has no stamp", o.Owner.Short(), o.Seq)
	}
	if err := b.checkPlaceable(o); err != nil {
		return err
	}
	o.stamp = stamp
	if stamp > b.nextStamp {
		b.nextStamp = stamp
	}
	b.insert(o)
	return nil
}

// Cancel removes the offer identified by (owner, seq). It is not an
// error to cancel a missing offer (it may have been fully consumed), in
// which case Cancel reports false.
func (b *Books) Cancel(owner addr.AccountID, seq uint32) bool {
	owned := b.byOwner[owner]
	o, ok := owned[seq]
	if !ok {
		return false
	}
	delete(owned, seq)
	if len(owned) == 0 {
		delete(b.byOwner, owner)
	}
	pair := Pair{Pays: o.Pays.Currency, Gets: o.Gets.Currency}
	bk := b.byPair[pair]
	bk.remove(o)
	if len(bk.offers) == 0 {
		delete(b.byPair, pair)
	}
	return true
}

// Best returns the best (lowest quality) offer in the pair's book, or
// nil when the book is empty.
func (b *Books) Best(pair Pair) *Offer {
	bk := b.byPair[pair]
	if bk == nil || len(bk.offers) == 0 {
		return nil
	}
	return bk.offers[0]
}

// BestQuality returns the memoized quality of the best offer in the
// pair's book. ok is false when the book is empty. This is the O(1)
// "is this bridge even worth probing" check.
func (b *Books) BestQuality(pair Pair) (q amount.Value, ok bool) {
	bk := b.byPair[pair]
	if bk == nil || len(bk.offers) == 0 {
		return amount.Zero, false
	}
	return bk.offers[0].quality, true
}

// Lookup returns the standing offer identified by (owner, seq), or nil.
// Replay uses it to remap fills planned against a snapshot onto the
// live book set's offers.
func (b *Books) Lookup(owner addr.AccountID, seq uint32) *Offer {
	return b.byOwner[owner][seq]
}

// Depth returns the number of standing offers in the pair's book.
func (b *Books) Depth(pair Pair) int {
	bk := b.byPair[pair]
	if bk == nil {
		return 0
	}
	return len(bk.offers)
}

// Fill records a partial or full consumption of one offer.
type Fill struct {
	Offer *Offer
	// Pays is what the taker delivers to the offer owner; Gets is what
	// the taker receives.
	Pays amount.Value
	Gets amount.Value
}

// Quote describes a prospective consumption of a book: the taker would
// pay TotalPays (in pair.Pays currency) to receive TotalGets (in
// pair.Gets currency) through Fills. TotalGets may be less than requested
// when the book lacks liquidity.
type Quote struct {
	Pair      Pair
	TotalPays amount.Value
	TotalGets amount.Value
	Fills     []Fill
}

// QuoteBuy computes, without mutating the book, how the taker can acquire
// up to wantGets of the pair's Gets currency, walking offers from best
// quality onward.
func (b *Books) QuoteBuy(pair Pair, wantGets amount.Value) (Quote, error) {
	var q Quote
	if err := b.QuoteBuyInto(pair, wantGets, &q); err != nil {
		return Quote{Pair: pair}, err
	}
	return q, nil
}

// QuoteBuyInto is QuoteBuy writing into a caller-owned Quote, reusing
// its Fills capacity — the allocation-free hot path. A fill that
// consumes an entire offer pays exactly the offer's Pays amount (no
// multiply, no rounding); partial fills pay take × quality.
func (b *Books) QuoteBuyInto(pair Pair, wantGets amount.Value, q *Quote) error {
	q.Pair = pair
	q.TotalPays = amount.Zero
	q.TotalGets = amount.Zero
	q.Fills = q.Fills[:0]
	if !wantGets.IsPositive() {
		return fmt.Errorf("orderbook: quote for non-positive amount %s", wantGets)
	}
	bk := b.byPair[pair]
	if bk == nil {
		return nil
	}
	remaining := wantGets
	for _, o := range bk.offers {
		if !remaining.IsPositive() {
			break
		}
		take := remaining.Min(o.Gets.Value)
		var pays amount.Value
		var err error
		if take.Cmp(o.Gets.Value) == 0 {
			// Full fill: deliver the offer's exact asking amount.
			pays = o.Pays.Value
		} else if pays, err = take.Mul(o.quality); err != nil {
			return fmt.Errorf("orderbook: quoting: %w", err)
		}
		q.Fills = append(q.Fills, Fill{Offer: o, Pays: pays, Gets: take})
		if q.TotalPays, err = q.TotalPays.Add(pays); err != nil {
			return fmt.Errorf("orderbook: quoting: %w", err)
		}
		if q.TotalGets, err = q.TotalGets.Add(take); err != nil {
			return fmt.Errorf("orderbook: quoting: %w", err)
		}
		if remaining, err = remaining.Sub(take); err != nil {
			return fmt.Errorf("orderbook: quoting: %w", err)
		}
	}
	return nil
}

// Apply commits a quote's fills: each offer shrinks by the consumed
// amounts and empty offers leave the book. The quote must have been
// produced by this book set with no intervening mutation.
func (b *Books) Apply(q Quote) error {
	for _, f := range q.Fills {
		o := f.Offer
		owned := b.byOwner[o.Owner]
		if owned == nil || owned[o.Seq] != o {
			return fmt.Errorf("orderbook: stale quote: offer %s/%d no longer standing", o.Owner.Short(), o.Seq)
		}
	}
	for _, f := range q.Fills {
		o := f.Offer
		newGets, err := o.Gets.Value.Sub(f.Gets)
		if err != nil {
			return fmt.Errorf("orderbook: applying fill: %w", err)
		}
		newPays, err := o.Pays.Value.Sub(f.Pays)
		if err != nil {
			return fmt.Errorf("orderbook: applying fill: %w", err)
		}
		if newGets.IsNegative() {
			return fmt.Errorf("orderbook: fill exceeds offer %s/%d", o.Owner.Short(), o.Seq)
		}
		o.Gets.Value = newGets
		o.Pays.Value = newPays
		// Dust or exhausted offers are removed. Proportional fills keep
		// quality essentially unchanged, but decimal rounding can drift
		// the ratio at the last digit — refresh the memo and, if the
		// quality moved, reposition the offer so the book stays in
		// canonical (quality, stamp) order regardless of fill history.
		if !o.Gets.Value.IsPositive() || !o.Pays.Value.IsPositive() {
			b.Cancel(o.Owner, o.Seq)
		} else {
			old := o.quality
			o.memoQuality()
			if o.quality.Cmp(old) != 0 {
				bk := b.byPair[Pair{Pays: o.Pays.Currency, Gets: o.Gets.Currency}]
				bk.remove(o)
				bk.insert(o)
			}
		}
	}
	return nil
}

// OffersOf returns the number of standing offers owned by account.
func (b *Books) OffersOf(owner addr.AccountID) int { return len(b.byOwner[owner]) }

// StampCounter returns the last placement stamp issued. Persisting it
// (and restoring via RestoreStampCounter) keeps future placements'
// stamps identical across a snapshot/restore, even though consumed and
// cancelled offers leave gaps in the sequence.
func (b *Books) StampCounter() uint64 { return b.nextStamp }

// RestoreStampCounter fast-forwards the stamp counter; it never moves
// backwards.
func (b *Books) RestoreStampCounter(n uint64) {
	if n > b.nextStamp {
		b.nextStamp = n
	}
}

// Each calls fn for every standing offer, in no particular order.
func (b *Books) Each(fn func(*Offer)) {
	for _, owned := range b.byOwner {
		for _, o := range owned {
			fn(o)
		}
	}
}

// EachOf calls fn for each standing offer owned by the account, in no
// particular order.
func (b *Books) EachOf(owner addr.AccountID, fn func(*Offer)) {
	for _, o := range b.byOwner[owner] {
		fn(o)
	}
}

// Owners calls fn for each account with standing offers and its count.
func (b *Books) Owners(fn func(owner addr.AccountID, offers int)) {
	for owner, m := range b.byOwner {
		fn(owner, len(m))
	}
}

// RemoveOwner cancels every standing offer of the account — the
// market-maker ablation primitive.
func (b *Books) RemoveOwner(owner addr.AccountID) int {
	owned := b.byOwner[owner]
	seqs := make([]uint32, 0, len(owned))
	for seq := range owned {
		seqs = append(seqs, seq)
	}
	for _, seq := range seqs {
		b.Cancel(owner, seq)
	}
	return len(seqs)
}

// Pairs calls fn for each non-empty book.
func (b *Books) Pairs(fn func(Pair, int)) {
	for pair, bk := range b.byPair {
		fn(pair, len(bk.offers))
	}
}

// NumOffers returns the total number of standing offers.
func (b *Books) NumOffers() int {
	n := 0
	for _, m := range b.byOwner {
		n += len(m)
	}
	return n
}

// Clone deep-copies the book set for replay experiments, preserving
// book order, placement stamps, and the stamp counter — a clone quotes
// exactly like the original.
func (b *Books) Clone() *Books {
	out := New()
	out.nextStamp = b.nextStamp
	for pair, bk := range b.byPair {
		dupBook := &book{offers: make([]*Offer, len(bk.offers))}
		for i, o := range bk.offers {
			dup := *o
			dupBook.offers[i] = &dup
			owned, ok := out.byOwner[dup.Owner]
			if !ok {
				owned = make(map[uint32]*Offer)
				out.byOwner[dup.Owner] = owned
			}
			owned[dup.Seq] = &dup
		}
		out.byPair[pair] = dupBook
	}
	return out
}
