package ledgerstore

import (
	"context"
	"runtime"
	"sync"

	"ripplestudy/internal/ledger"
)

// PagesParallel streams every stored page to fn, decoding segments
// concurrently on up to `workers` goroutines. It is the scan behind the
// Figure 3 pipeline at full-history scale, where a single goroutine
// spends most of its time in DecodePage.
//
// Ordering: pages within one segment arrive in append order, but
// segments are interleaved arbitrarily across workers — callers needing
// global order must use Pages or reorder by header sequence. fn is
// called concurrently from up to `workers` goroutines; the worker index
// (0 ≤ w < workers) identifies the calling goroutine so callers can
// keep per-worker state (e.g. one deanon.Feeder each) without locking.
//
// The first error — fn's, a decode failure, or ctx cancellation — stops
// all workers and is returned. A workers value < 1 defaults to
// GOMAXPROCS. Like Pages, a truncated final record is tolerated and a
// checksum mismatch returns ErrCorrupted.
func (s *Store) PagesParallel(ctx context.Context, workers int, fn func(worker int, p *ledger.Page) error) error {
	if err := s.closeCurrent(); err != nil {
		return err
	}
	segs, err := segmentFiles(s.dir)
	if err != nil {
		return err
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(segs) {
		workers = len(segs)
	}
	if workers <= 1 {
		var buf []byte
		for _, seg := range segs {
			if err := ctx.Err(); err != nil {
				return err
			}
			var err error
			if buf, err = streamSegmentBuf(seg, buf, func(p *ledger.Page) error {
				return fn(0, p)
			}); err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		once     sync.Once
		firstErr error
	)
	fail := func(err error) {
		once.Do(func() {
			firstErr = err
			cancel()
		})
	}

	work := make(chan string)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// One decode buffer per worker, reused across all the
			// segments the worker pulls — the frame reader grows it
			// geometrically and never gives it back.
			var buf []byte
			for seg := range work {
				var err error
				buf, err = streamSegmentBuf(seg, buf, func(p *ledger.Page) error {
					if err := ctx.Err(); err != nil {
						return err
					}
					return fn(w, p)
				})
				if err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}

feed:
	for _, seg := range segs {
		select {
		case work <- seg:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()
	// Cancellation without a worker error (parent ctx cancelled mid-feed)
	// still has to surface.
	fail(ctx.Err())
	return firstErr
}
