package deanon

import (
	"hash/fnv"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"ripplestudy/internal/amount"
	"ripplestudy/internal/ledger"
)

// refFingerprint is the original hash.Hash-based implementation, kept
// as the bit-compatibility oracle for the inlined FNV path.
func refFingerprint(f Features, res Resolution) Fingerprint {
	h := fnv.New64a()
	var buf [16]byte
	if res.Amount != AmountOff {
		v := RoundAmount(f.Amount, f.Currency, res.Amount)
		m := v.Mantissa()
		e := uint64(int64(v.Exponent()))
		s := uint64(0)
		if v.IsNegative() {
			s = 1
		}
		for i := 0; i < 8; i++ {
			buf[i] = byte(m >> (56 - 8*i))
			buf[8+i] = byte((e<<1 | s) >> (56 - 8*i))
		}
		h.Write([]byte{'A'})
		h.Write(buf[:])
	}
	if res.Time != TimeOff {
		t := uint64(CoarsenTime(f.Time, res.Time))
		for i := 0; i < 8; i++ {
			buf[i] = byte(t >> (56 - 8*i))
		}
		h.Write([]byte{'T'})
		h.Write(buf[:8])
	}
	if res.Currency {
		h.Write([]byte{'C'})
		h.Write(f.Currency[:])
	}
	if res.Destination {
		h.Write([]byte{'D'})
		h.Write(f.Destination[:])
	}
	return Fingerprint(h.Sum64())
}

// allResolutions enumerates every feature on/off + level combination.
func allResolutions() []Resolution {
	var out []Resolution
	for a := AmountOff; a <= AmountExact; a++ {
		for ti := TimeOff; ti <= TimeDays; ti++ {
			for _, c := range []bool{false, true} {
				for _, d := range []bool{false, true} {
					out = append(out, Resolution{Amount: a, Time: ti, Currency: c, Destination: d})
				}
			}
		}
	}
	return out
}

// randomFeatures builds a deterministic feature stream with deliberate
// fingerprint collisions (small value/time/destination pools).
func randomFeatures(n int, seed int64) []Features {
	r := rand.New(rand.NewSource(seed))
	curs := []amount.Currency{amount.USD, amount.EUR, amount.BTC, amount.XRP, amount.MTL}
	out := make([]Features, 0, n)
	for i := 0; i < n; i++ {
		v, err := amount.NewValue(int64(r.Intn(5000)+1), r.Intn(4)-2)
		if err != nil {
			panic(err)
		}
		if r.Intn(11) == 0 {
			v = v.Neg()
		}
		out = append(out, Features{
			Sender:      acct(uint64(r.Intn(500) + 1)),
			Destination: acct(uint64(r.Intn(40) + 1000)),
			Currency:    curs[r.Intn(len(curs))],
			Amount:      v,
			Time:        ledger.CloseTime(500_000_000 + r.Intn(5000)),
		})
	}
	return out
}

func TestFingerprintBitIdenticalToFNVReference(t *testing.T) {
	feats := randomFeatures(200, 7)
	for _, res := range allResolutions() {
		for _, f := range feats {
			if got, want := FingerprintOf(f, res), refFingerprint(f, res); got != want {
				t.Fatalf("FingerprintOf(%+v, %s) = %x, reference = %x", f, res, got, want)
			}
		}
	}
}

func TestEncodeFeaturesMatchesFingerprintOf(t *testing.T) {
	feats := randomFeatures(200, 8)
	for _, f := range feats {
		enc := EncodeFeatures(f)
		for _, res := range allResolutions() {
			if got, want := enc.Fingerprint(res), FingerprintOf(f, res); got != want {
				t.Fatalf("FeatureEnc.Fingerprint(%s) = %x, FingerprintOf = %x", res, got, want)
			}
		}
	}
}

func TestParallelStudyDifferential(t *testing.T) {
	feats := randomFeatures(5000, 9)
	seq := NewStudy(Figure3Rows)
	for _, f := range feats {
		seq.Observe(f)
	}
	want := seq.Results()
	for _, shardBits := range []int{0, 1, 3, 6} {
		par := NewParallelStudy(Figure3Rows, shardBits)
		for _, f := range feats {
			par.Observe(f)
		}
		got := par.Results()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shardBits=%d: parallel results diverge\ngot  %+v\nwant %+v", shardBits, got, want)
		}
		if par.Payments() != seq.Payments() {
			t.Fatalf("shardBits=%d: payments %d != %d", shardBits, par.Payments(), seq.Payments())
		}
		// Results must be re-readable (the importance study reads twice).
		if again := par.Results(); !reflect.DeepEqual(again, want) {
			t.Fatalf("shardBits=%d: second Results call diverged", shardBits)
		}
	}
}

func TestParallelStudyConcurrentFeeders(t *testing.T) {
	feats := randomFeatures(8000, 10)
	seq := NewStudy(Figure3Rows)
	for _, f := range feats {
		seq.Observe(f)
	}
	want := seq.Results()

	const producers = 8
	par := NewParallelStudy(Figure3Rows, 3)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		fd := par.Feeder()
		wg.Add(1)
		go func(p int, fd *Feeder) {
			defer wg.Done()
			for i := p; i < len(feats); i += producers {
				fd.Observe(feats[i])
			}
		}(p, fd)
	}
	wg.Wait()
	if got := par.Results(); !reflect.DeepEqual(got, want) {
		t.Fatalf("concurrent feeders diverge\ngot  %+v\nwant %+v", got, want)
	}
}

// TestSaturatingCounterBoundary exercises the 0→1→2 (saturated)
// transitions that the information gain hinges on: a fingerprint seen
// once is unique, seen twice is not, and further repetitions must not
// wrap the uint8 counter back into "unique".
func TestSaturatingCounterBoundary(t *testing.T) {
	res := Resolution{Amount: AmountExact, Time: TimeSeconds, Currency: true, Destination: true}
	once := feat(1, 2, amount.USD, "10", 100)
	twice := feat(3, 4, amount.USD, "20", 200)
	many := feat(5, 6, amount.USD, "30", 300)

	par := NewParallelStudy([]Resolution{res}, 2)
	par.Observe(once)
	par.Observe(twice)
	par.Observe(twice)
	// 300 repetitions would wrap an unsaturated uint8 to 44; saturation
	// must pin it at 2.
	for i := 0; i < 300; i++ {
		par.Observe(many)
	}
	rows := par.Results()
	if rows[0].Unique != 1 {
		t.Fatalf("unique = %d, want 1 (only the once-seen fingerprint)", rows[0].Unique)
	}
	if rows[0].Total != 303 {
		t.Fatalf("total = %d, want 303", rows[0].Total)
	}
	if distinct := par.DistinctFingerprints(); distinct[0] != 3 {
		t.Fatalf("distinct fingerprints = %d, want 3", distinct[0])
	}
}

// TestShardMergeAcrossShards verifies that the lock-free merge over a
// multi-shard partition counts exactly once per fingerprint: repeated
// observations of one payment land in the same shard (same fingerprint,
// same high bits), never double-counting across shards.
func TestShardMergeAcrossShards(t *testing.T) {
	feats := randomFeatures(2000, 11)
	par := NewParallelStudy(Figure3Rows, 4) // 16 shards
	for _, f := range feats {
		par.Observe(f)
		par.Observe(f) // every payment twice: nothing may stay unique
	}
	for _, row := range par.Results() {
		if row.Unique != 0 {
			t.Fatalf("%s: unique = %d after duplicating every payment", row.Resolution, row.Unique)
		}
		if row.Total != 2*len(feats) {
			t.Fatalf("%s: total = %d, want %d", row.Resolution, row.Total, 2*len(feats))
		}
	}
	// The shards partition the fingerprint space: summing shard map
	// sizes must equal the true distinct-fingerprint count — any
	// double-count across shards would inflate it.
	parDistinct := par.DistinctFingerprints()
	for i, res := range Figure3Rows {
		distinct := make(map[Fingerprint]struct{})
		for _, f := range feats {
			distinct[FingerprintOf(f, res)] = struct{}{}
		}
		if parDistinct[i] != len(distinct) {
			t.Fatalf("%s: shards hold %d fingerprints, want %d", res, parDistinct[i], len(distinct))
		}
	}
}

func TestImportanceStudyParallelMatchesSequential(t *testing.T) {
	feats := randomFeatures(3000, 12)
	seqImp := NewImportanceStudy()
	parImp := NewImportanceStudyParallel(3)
	if parImp.Parallel() == nil {
		t.Fatal("Parallel() accessor returned nil for parallel importance study")
	}
	if NewImportanceStudy().Parallel() != nil {
		t.Fatal("Parallel() accessor non-nil for sequential importance study")
	}
	for _, f := range feats {
		seqImp.Observe(f)
		parImp.Observe(f)
	}
	if seqImp.FullIG() != parImp.FullIG() {
		t.Fatalf("FullIG diverges: %v != %v", seqImp.FullIG(), parImp.FullIG())
	}
	if got, want := parImp.Results(), seqImp.Results(); !reflect.DeepEqual(got, want) {
		t.Fatalf("importance rows diverge\ngot  %+v\nwant %+v", got, want)
	}
}

func TestFeederAfterResultsPanics(t *testing.T) {
	par := NewParallelStudy(Figure3Rows, 1)
	par.Observe(feat(1, 2, amount.USD, "10", 100))
	par.Results()
	defer func() {
		if recover() == nil {
			t.Error("Feeder after Results should panic")
		}
	}()
	par.Feeder()
}

// TestIndexHotFingerprint drives one fingerprint past the linear-scan
// threshold (the MTL-spam shape) and checks order, dedup, and lookup.
func TestIndexHotFingerprint(t *testing.T) {
	res := Resolution{Amount: AmountOff, Time: TimeOff, Currency: true, Destination: false}
	idx := NewIndex(res)
	const senders = 200
	// Every payment shares the currency-only fingerprint; each sender
	// appears three times.
	for round := 0; round < 3; round++ {
		for s := uint64(1); s <= senders; s++ {
			idx.Add(feat(s, 2, amount.MTL, "1", uint32(s)))
		}
	}
	got := idx.Candidates(feat(0, 9, amount.MTL, "2", 77))
	if len(got) != senders {
		t.Fatalf("candidates = %d, want %d (deduplicated)", len(got), senders)
	}
	for i := 0; i < senders; i++ {
		if got[i] != acct(uint64(i+1)) {
			t.Fatalf("candidate %d out of first-seen order", i)
		}
	}
}

// TestCountTable exercises the open-addressed shard table directly:
// growth across several doublings, the all-zero fingerprint (which is
// also the empty-slot sentinel), and counter saturation.
func TestCountTable(t *testing.T) {
	tab := newCountTable()
	ref := make(map[Fingerprint]int)
	rng := rand.New(rand.NewSource(7))
	// Enough distinct keys to force multiple grow() cycles past the
	// 256-slot initial capacity; every third key observed twice.
	for i := 0; i < 5000; i++ {
		fp := Fingerprint(rng.Uint64())
		n := 1 + i%3/2
		for j := 0; j < n; j++ {
			tab.incr(fp)
			ref[fp]++
		}
	}
	tab.incr(0)
	ref[0]++
	wantUnique, wantDistinct := 0, len(ref)
	for _, c := range ref {
		if c == 1 {
			wantUnique++
		}
	}
	if got := tab.unique(); got != wantUnique {
		t.Errorf("unique = %d, want %d", got, wantUnique)
	}
	if got := tab.distinct(); got != wantDistinct {
		t.Errorf("distinct = %d, want %d", got, wantDistinct)
	}
	// Saturation: hammering one key keeps the counter at 2 and the key
	// counted as distinct but not unique.
	hot := Fingerprint(0xdeadbeef)
	for i := 0; i < 1000; i++ {
		tab.incr(hot)
	}
	if got := tab.distinct(); got != wantDistinct+1 {
		t.Errorf("distinct after hot key = %d, want %d", got, wantDistinct+1)
	}
	if got := tab.unique(); got != wantUnique {
		t.Errorf("unique after hot key = %d, want %d", got, wantUnique)
	}
	// The zero key saturates out-of-band too.
	tab.incr(0)
	tab.incr(0)
	if got := tab.unique(); got != wantUnique-1 {
		t.Errorf("unique after re-observing zero = %d, want %d", got, wantUnique-1)
	}
	if tab.bytes() < 5000*9 {
		t.Errorf("bytes = %d, implausibly small for %d entries", tab.bytes(), tab.distinct())
	}
}
