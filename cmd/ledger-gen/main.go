// Command ledger-gen generates a calibrated synthetic Ripple history —
// the stand-in for the paper's 500 GB ledger download — into a
// ledgerstore directory that the analysis commands consume.
//
//	ledger-gen -out ./history -payments 200000 -seed 1
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"ripplestudy/internal/ledgerstore"
	"ripplestudy/internal/synth"
)

func main() {
	out := flag.String("out", "history", "output ledgerstore directory (must not exist)")
	payments := flag.Int("payments", 200_000, "number of payments to generate")
	seed := flag.Int64("seed", 1, "random seed")
	sign := flag.Bool("sign", false, "sign every transaction (slower; signatures are not needed for analyses)")
	flag.Parse()

	if err := run(*out, *payments, *seed, *sign); err != nil {
		fmt.Fprintln(os.Stderr, "ledger-gen:", err)
		os.Exit(1)
	}
}

func run(out string, payments int, seed int64, sign bool) error {
	store, err := ledgerstore.Create(out)
	if err != nil {
		return err
	}
	fmt.Printf("ledger-gen: generating %d payments (seed %d) into %s\n", payments, seed, out)
	res, err := synth.Generate(synth.Config{
		Payments:       payments,
		Seed:           seed,
		SkipSignatures: !sign,
	}, store.Append)
	if err != nil {
		return err
	}
	if err := store.Close(); err != nil {
		return err
	}
	st := res.Stats
	fmt.Printf("done: %d pages, %d transactions, %d payments ok, %d failed, %d offers, %d trust-sets\n",
		st.Pages, st.Transactions, st.PaymentsOK, st.PaymentsFailed, st.Offers, st.TrustSets)
	fmt.Printf("cross-currency payments: %d\n", st.CrossCurrency)

	// Top currencies, for a quick sanity check against Figure 4.
	type cc struct {
		code string
		n    int
	}
	var mix []cc
	for cur, n := range st.ByCurrency {
		mix = append(mix, cc{cur.String(), n})
	}
	sort.Slice(mix, func(i, j int) bool { return mix[i].n > mix[j].n })
	fmt.Print("top currencies:")
	for i, m := range mix {
		if i == 8 {
			break
		}
		fmt.Printf(" %s:%d", m.code, m.n)
	}
	fmt.Println()

	info, err := ledgerstore.Open(out)
	if err != nil {
		return err
	}
	stats, err := info.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("store: %d segments, %.1f MiB\n", stats.Segments, float64(stats.Bytes)/(1<<20))
	return nil
}
