// Package nodestore implements content-addressed storage for
// authenticated tree nodes (internal/shamap): every record is a blob
// stored under its own SHA512Half, so a store is an idempotent set —
// putting the same hash twice is a no-op, the union of any collection of
// stores is itself a valid store, and readers verify integrity by
// re-hashing what they fetch.
//
// Three backends cover the study's needs: MemStore for tests and
// in-process snapshots, FileWriter/FileStore for the append-only batch
// files a replay checkpoint persists (file.go), and Cache, an LRU layer
// over any Getter for hot-node reads (cache.go). The flat record framing
// (AppendRecord/DecodeRecord) is shared by every backend:
//
//	u32 payload length ‖ hash[32] ‖ payload ‖ u32 CRC-32 (hash‖payload)
//
// lengths big-endian, CRC over the hash and payload bytes (IEEE). The
// CRC catches torn writes and bit rot cheaply at scan time; the hash
// check (the caller's, or VerifyRecord) authenticates content.
package nodestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"ripplestudy/internal/ledger"
)

// ErrNotFound reports a hash absent from a store. Layered lookups use
// it to fall through; anything else aborts the lookup.
var ErrNotFound = errors.New("nodestore: not found")

// Getter is the read side of a store.
type Getter interface {
	// Get returns the payload stored under h, or ErrNotFound. The
	// returned slice is owned by the store: callers must not mutate it.
	Get(h ledger.Hash) ([]byte, error)
}

// Store is a content-addressed node store.
type Store interface {
	Getter
	// Put stores payload under h. Storing a hash that is already present
	// is a no-op (content addressing makes the write idempotent). The
	// payload is only borrowed for the call; implementations copy what
	// they keep.
	Put(h ledger.Hash, payload []byte) error
	// Len returns the number of distinct records.
	Len() int
}

// MemStore is the in-memory backend.
type MemStore struct {
	m map[ledger.Hash][]byte
}

// NewMem creates an empty in-memory store.
func NewMem() *MemStore {
	return &MemStore{m: make(map[ledger.Hash][]byte)}
}

// Get implements Getter.
func (s *MemStore) Get(h ledger.Hash) ([]byte, error) {
	d, ok := s.m[h]
	if !ok {
		return nil, ErrNotFound
	}
	return d, nil
}

// Put implements Store.
func (s *MemStore) Put(h ledger.Hash, payload []byte) error {
	if _, ok := s.m[h]; ok {
		return nil
	}
	s.m[h] = append([]byte(nil), payload...)
	return nil
}

// Len implements Store.
func (s *MemStore) Len() int { return len(s.m) }

// Layered chains Getters: Get answers from the first layer that holds
// the hash. Because records are content-addressed, the same hash found
// in two layers is byte-identical — layering checkpoint batch files in
// any order reassembles the store that wrote them.
type Layered []Getter

// Get implements Getter.
func (l Layered) Get(h ledger.Hash) ([]byte, error) {
	for _, g := range l {
		d, err := g.Get(h)
		if err == nil {
			return d, nil
		}
		if !errors.Is(err, ErrNotFound) {
			return nil, err
		}
	}
	return nil, ErrNotFound
}

// Record framing constants.
const (
	recordHeader  = 4 + 32 // length + hash
	recordTrailer = 4      // CRC-32
	// MaxPayload bounds a single record: far above any real tree node
	// (a full inner node is 515 bytes) but small enough that a corrupt
	// length field cannot drive an allocation of gigabytes.
	MaxPayload = 1 << 26
)

// AppendRecord appends the framed record for (h, payload) to dst.
func AppendRecord(dst []byte, h ledger.Hash, payload []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	start := len(dst)
	dst = append(dst, h[:]...)
	dst = append(dst, payload...)
	crc := crc32.ChecksumIEEE(dst[start:])
	return binary.BigEndian.AppendUint32(dst, crc)
}

// DecodeRecord parses one framed record from the front of data,
// returning the payload (aliasing data) and the remaining bytes.
func DecodeRecord(data []byte) (h ledger.Hash, payload, rest []byte, err error) {
	if len(data) < recordHeader+recordTrailer {
		return h, nil, nil, fmt.Errorf("nodestore: record truncated at %d bytes", len(data))
	}
	n := binary.BigEndian.Uint32(data)
	if n > MaxPayload {
		return h, nil, nil, fmt.Errorf("nodestore: record length %d exceeds cap %d", n, MaxPayload)
	}
	total := recordHeader + int(n) + recordTrailer
	if len(data) < total {
		return h, nil, nil, fmt.Errorf("nodestore: record wants %d bytes, have %d", total, len(data))
	}
	body := data[4 : recordHeader+int(n)]
	crc := binary.BigEndian.Uint32(data[recordHeader+int(n):])
	if crc32.ChecksumIEEE(body) != crc {
		return h, nil, nil, fmt.Errorf("nodestore: record CRC mismatch")
	}
	copy(h[:], body)
	return h, body[32:], data[total:], nil
}

// VerifyRecord re-hashes a payload against the hash that names it —
// the content-addressing check on top of the frame CRC.
func VerifyRecord(h ledger.Hash, payload []byte) error {
	if ledger.SHA512Half(payload) != h {
		return fmt.Errorf("nodestore: payload does not hash to %s", h.Short())
	}
	return nil
}
