package core

import (
	"path/filepath"
	"testing"

	"ripplestudy/internal/amount"
)

// smallDataset builds a shared in-memory dataset for the facade tests.
func smallDataset(t *testing.T) *Dataset {
	t.Helper()
	ds, err := BuildDataset(Config{Payments: 3000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestBuildDatasetInMemory(t *testing.T) {
	ds := smallDataset(t)
	st, err := ds.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Payments < 3000 {
		t.Errorf("payments = %d, want ≥3000", st.Payments)
	}
	if st.TotalPages == 0 || st.ActiveUsers == 0 || st.Offers == 0 {
		t.Errorf("stats incomplete: %+v", st)
	}
	if ds.GeneratorResult() == nil {
		t.Error("generator result missing for in-memory dataset")
	}
}

func TestBuildDatasetWithStoreAndReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	ds, err := BuildDataset(Config{Payments: 1200, Seed: 6, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	st1, err := ds.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// Reopen from disk: same statistics without the generator state.
	ds2, err := OpenDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := ds2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st1 != st2 {
		t.Errorf("stats differ across reopen:\n%+v\n%+v", st1, st2)
	}
	if ds2.GeneratorResult() != nil {
		t.Error("reopened dataset should have no generator result")
	}
	// Figure 7 must still work (state rebuilt by replay).
	top, err := ds2.Figure7(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) == 0 {
		t.Error("no intermediaries from reopened dataset")
	}
	if top[0].Profile.TrustReceived == 0 && top[0].Profile.TrustGiven == 0 {
		t.Error("profiles not filled from replayed state")
	}
}

func TestFigure3Facade(t *testing.T) {
	ds := smallDataset(t)
	rows, err := ds.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(rows))
	}
	if rows[0].IG < 0.9 {
		t.Errorf("full-resolution IG = %.3f, want high", rows[0].IG)
	}
	if rows[9].IG > rows[0].IG {
		t.Error("minimum-information row beats full resolution")
	}
}

func TestFigure4And5Facade(t *testing.T) {
	ds := smallDataset(t)
	hist, err := ds.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if hist[0].Currency != amount.XRP {
		t.Errorf("top currency = %s, want XRP", hist[0].Currency)
	}
	curves, err := ds.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 8 || curves[0].Label != "Global" {
		t.Fatalf("curves = %d (first %q), want 8 with Global first", len(curves), curves[0].Label)
	}
	for _, c := range curves {
		if len(c.Points) == 0 {
			t.Errorf("curve %s has no points", c.Label)
		}
	}
}

func TestFigure6Facade(t *testing.T) {
	ds := smallDataset(t)
	hops, parallel, err := ds.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if hops[8] == 0 {
		t.Error("8-hop spam spike missing")
	}
	if parallel[6] == 0 {
		t.Error("6-parallel-path spam spike missing")
	}
}

func TestTableIIFacade(t *testing.T) {
	ds := smallDataset(t)
	res, err := ds.TableII(0.7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cross.Delivered != 0 {
		t.Errorf("cross delivered = %d, want 0", res.Cross.Delivered)
	}
	if res.RemovedMarketMakers == 0 {
		t.Error("no market makers removed")
	}
	// Out-of-range fraction falls back to the default.
	if _, err := ds.TableII(0); err != nil {
		t.Errorf("default snapshot fraction failed: %v", err)
	}
}

func TestFigure2Facade(t *testing.T) {
	reports, err := Figure2(60, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("reports = %d, want 3 periods", len(reports))
	}
	wantValidators := []int{34, 33, 39}
	for i, rep := range reports {
		if len(rep.Validators) != wantValidators[i] {
			t.Errorf("%s: %d validators, want %d", rep.Period, len(rep.Validators), wantValidators[i])
		}
	}
}

func TestTableIFacade(t *testing.T) {
	if rows := TableI(); len(rows) != 3 {
		t.Errorf("Table I rows = %d, want 3", len(rows))
	}
}

func TestMitigationFacade(t *testing.T) {
	ds := smallDataset(t)
	rows, err := ds.Mitigation([]int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].Exposure >= rows[0].Exposure {
		t.Error("exposure did not drop with wallet splitting")
	}
	if rows[1].ExtraTrustLines == 0 {
		t.Error("wallet splitting reported no cost")
	}
}

func TestIncentivesFacade(t *testing.T) {
	scenarios := Incentives(60)
	if len(scenarios) != 3 {
		t.Fatalf("scenarios = %d", len(scenarios))
	}
	noReward := scenarios[0].Series[len(scenarios[0].Series)-1].Validators
	strong := scenarios[2].Series[len(scenarios[2].Series)-1].Validators
	if noReward >= strong {
		t.Errorf("no-reward equilibrium (%d) should be below strong-tax (%d)", noReward, strong)
	}
}

func TestSpamCostFacade(t *testing.T) {
	ds := smallDataset(t)
	top, total, err := ds.SpamCost(5)
	if err != nil {
		t.Fatal(err)
	}
	if total <= 0 || len(top) != 5 {
		t.Fatalf("total=%d top=%d", total, len(top))
	}
	if top[0].Fees < top[4].Fees {
		t.Error("fee payers not sorted")
	}
}

func TestOfferConcentrationFacade(t *testing.T) {
	ds := smallDataset(t)
	conc, err := ds.OfferConcentration()
	if err != nil {
		t.Fatal(err)
	}
	if conc[10] <= 0 || conc[10] > conc[100] {
		t.Errorf("concentration = %v", conc)
	}
}
