// Checkpoint sidecar: alongside the page segments (and seqindex.json),
// a store directory may carry a `checkpoints/` subdirectory holding
// sealed replay state. Each checkpoint is a pair of files named by the
// page sequence it was sealed at:
//
//	cp-%016d.nodes  — nodestore batch: the state-tree nodes NEW since
//	                  the previous checkpoint (content-addressed records,
//	                  see internal/nodestore framing)
//	cp-%016d.json   — manifest: the sealed root, the engine scalars the
//	                  tree cannot carry (the history-chained StateDigest),
//	                  and integrity counts for the nodes file
//
// Batches are incremental: reconstructing the tree at checkpoint N
// requires the union of every cp-*.nodes with sequence ≤ N (missing or
// damaged batches fail the load, and the replayer falls back to a cold
// rebuild). The manifest is written atomically (tmp + rename) AFTER its
// nodes file is synced, so a manifest's existence implies a complete
// batch.
package ledgerstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"ripplestudy/internal/ledger"
	"ripplestudy/internal/nodestore"
)

// CheckpointDirName is the sidecar subdirectory inside a store dir.
const CheckpointDirName = "checkpoints"

// CheckpointDir returns the store's checkpoint sidecar path (which may
// not exist yet).
func (s *Store) CheckpointDir() string { return filepath.Join(s.dir, CheckpointDirName) }

// CheckpointMeta is one checkpoint's manifest.
type CheckpointMeta struct {
	// Seq is the page sequence the checkpoint was sealed after: replaying
	// every transaction in pages ≤ Seq produces exactly this state.
	Seq uint64 `json:"seq"`
	// Root is the sealed state-tree root.
	Root ledger.Hash `json:"root"`
	// StateDigest is the engine's history-chained digest at Seq. It is
	// not derivable from the tree, so the manifest carries it.
	StateDigest ledger.Hash `json:"state_digest"`
	// TotalDrops and FeesDestroyed cross-check the tree's meta leaf.
	TotalDrops    uint64 `json:"total_drops"`
	FeesDestroyed int64  `json:"fees_destroyed"`
	// NewNodes and NodesBytes describe the sibling .nodes batch; the
	// loader rejects batches whose size disagrees.
	NewNodes   int   `json:"new_nodes"`
	NodesBytes int64 `json:"nodes_bytes"`
}

func checkpointBase(seq uint64) string { return fmt.Sprintf("cp-%016d", seq) }
func checkpointNodesPath(dir string, seq uint64) string {
	return filepath.Join(dir, checkpointBase(seq)+".nodes")
}
func checkpointMetaPath(dir string, seq uint64) string {
	return filepath.Join(dir, checkpointBase(seq)+".json")
}

// WriteCheckpoint persists one checkpoint into dir (created on demand):
// emit streams the new tree nodes into the batch file, then the
// manifest commits the checkpoint atomically. A checkpoint that already
// exists at meta.Seq is left untouched. The NewNodes/NodesBytes fields
// of meta are filled in by the write.
func WriteCheckpoint(dir string, meta *CheckpointMeta, emit func(put func(h ledger.Hash, data []byte) error) (int, error)) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	metaPath := checkpointMetaPath(dir, meta.Seq)
	if _, err := os.Stat(metaPath); err == nil {
		return nil // already checkpointed (idempotent resume-and-continue)
	}
	nodesPath := checkpointNodesPath(dir, meta.Seq)
	// A nodes file without a manifest is debris from an interrupted
	// write; replace it.
	_ = os.Remove(nodesPath)
	fw, err := nodestore.CreateFile(nodesPath)
	if err != nil {
		return err
	}
	n, err := emit(fw.Put)
	if err != nil {
		fw.Close()
		return err
	}
	meta.NewNodes = n
	meta.NodesBytes = fw.Bytes()
	if err := fw.Close(); err != nil {
		return err
	}

	blob, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return err
	}
	tmp := metaPath + ".tmp"
	if err := os.WriteFile(tmp, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, metaPath)
}

// ListCheckpoints returns the usable checkpoints in dir, sorted by
// sequence. Manifests that are unreadable, or whose nodes batch is
// missing or has the wrong size, are skipped (not errors): a damaged
// checkpoint merely shrinks how far a resume can jump.
func ListCheckpoints(dir string) ([]CheckpointMeta, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var metas []CheckpointMeta
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "cp-") || !strings.HasSuffix(name, ".json") {
			continue
		}
		blob, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		var meta CheckpointMeta
		if err := json.Unmarshal(blob, &meta); err != nil {
			continue
		}
		fi, err := os.Stat(checkpointNodesPath(dir, meta.Seq))
		if err != nil || fi.Size() != meta.NodesBytes {
			continue
		}
		metas = append(metas, meta)
	}
	sort.Slice(metas, func(i, j int) bool { return metas[i].Seq < metas[j].Seq })
	return metas, nil
}

// OpenCheckpointNodes opens the node batches of the given checkpoints
// as one layered content-addressed getter. Every batch is CRC-verified
// on open; any damage fails the whole open (callers fall back to a cold
// replay).
func OpenCheckpointNodes(dir string, metas []CheckpointMeta) (nodestore.Getter, error) {
	layers := make(nodestore.Layered, 0, len(metas))
	for _, m := range metas {
		fs, err := nodestore.OpenFile(checkpointNodesPath(dir, m.Seq))
		if err != nil {
			return nil, err
		}
		layers = append(layers, fs)
	}
	return layers, nil
}
