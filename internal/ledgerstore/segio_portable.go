//go:build !linux && !darwin || ledgerstore_nommap

package ledgerstore

// mapSegment on platforms without the mmap reader (or with the
// ledgerstore_nommap build tag): always defer to the ReadFile fallback
// in openSegment.
func mapSegment(path string) ([]byte, func() error, error) {
	return nil, nil, errMmapUnavailable
}
