// Marketmakers: cross-currency payments through order books, the XRP
// auto-bridge, and the Table II ablation in miniature — remove the
// market maker and watch the same payment fail.
//
//	go run ./examples/marketmakers
package main

import (
	"fmt"
	"log"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
	"ripplestudy/internal/ledger"
	"ripplestudy/internal/payment"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	eng := payment.NewEngine()
	alice := addr.KeyPairFromSeed(1) // holds EUR at the gateway
	shop := addr.KeyPairFromSeed(2)  // wants USD
	maker := addr.KeyPairFromSeed(3) // market maker bridging EUR→USD
	gw := addr.KeyPairFromSeed(4)    // gateway hosting both sides
	for _, kp := range []*addr.KeyPair{alice, shop, maker, gw} {
		eng.Fund(kp.AccountID(), 10_000*amount.DropsPerXRP)
	}

	submit := func(kp *addr.KeyPair, mutate func(*ledger.Tx)) *ledger.TxMeta {
		tx := &ledger.Tx{
			Account:  kp.AccountID(),
			Sequence: eng.NextSequence(kp.AccountID()),
			Fee:      10,
		}
		mutate(tx)
		tx.Sign(kp)
		meta, err := eng.Apply(tx)
		if err != nil {
			log.Fatal(err)
		}
		return meta
	}

	// Trust topology: the maker accepts gateway EUR; the shop accepts
	// gateway USD; the gateway extends the maker a USD allowance so
	// value can exit through it.
	submit(maker, func(tx *ledger.Tx) {
		tx.Type = ledger.TxTrustSet
		tx.LimitPeer = gw.AccountID()
		tx.Limit = amount.MustAmount("100000/EUR")
	})
	submit(shop, func(tx *ledger.Tx) {
		tx.Type = ledger.TxTrustSet
		tx.LimitPeer = gw.AccountID()
		tx.Limit = amount.MustAmount("100000/USD")
	})
	submit(gw, func(tx *ledger.Tx) {
		tx.Type = ledger.TxTrustSet
		tx.LimitPeer = maker.AccountID()
		tx.Limit = amount.MustAmount("100000/USD")
	})
	// The gateway accepts Alice's EUR (it hosts her balance): Alice
	// deposited cash at the gateway, so the gateway owes her EUR.
	submit(gw, func(tx *ledger.Tx) {
		tx.Type = ledger.TxTrustSet
		tx.LimitPeer = alice.AccountID()
		tx.Limit = amount.MustAmount("100000/EUR")
	})
	submit(alice, func(tx *ledger.Tx) {
		tx.Type = ledger.TxTrustSet
		tx.LimitPeer = gw.AccountID()
		tx.Limit = amount.MustAmount("100000/EUR")
	})
	submit(gw, func(tx *ledger.Tx) {
		tx.Type = ledger.TxPayment
		tx.Destination = alice.AccountID()
		tx.Amount = amount.MustAmount("500/EUR")
	})
	fmt.Println("Alice holds 500 EUR at the gateway; the shop accepts USD only.")

	// The maker places an offer: sells 1000 USD for 900 EUR.
	meta := submit(maker, func(tx *ledger.Tx) {
		tx.Type = ledger.TxOfferCreate
		tx.TakerPays = amount.MustAmount("900/EUR")
		tx.TakerGets = amount.MustAmount("1000/USD")
	})
	fmt.Printf("maker's offer placed: %s (sells USD at 0.90 EUR)\n", meta.Result)

	// Alice pays the shop 100 USD, spending EUR.
	meta = submit(alice, func(tx *ledger.Tx) {
		tx.Type = ledger.TxPayment
		tx.Destination = shop.AccountID()
		tx.Amount = amount.MustAmount("100/USD")
		tx.SendMax = amount.MustAmount("95/EUR")
	})
	fmt.Printf("\ncross-currency payment: %s\n", meta.Result)
	fmt.Printf("  delivered: %s, cross-currency: %v, offers consumed: %d, hops: %d\n",
		meta.Delivered, meta.CrossCurrency, meta.OffersConsumed, meta.MaxHops())
	fmt.Printf("  shop now holds %s USD at the gateway\n",
		eng.Graph().Owed(shop.AccountID(), gw.AccountID(), amount.USD))
	fmt.Printf("  Alice's EUR balance fell to %s\n",
		eng.Graph().Owed(alice.AccountID(), gw.AccountID(), amount.EUR))

	// The Table II ablation, in miniature: clone the world, delete the
	// market makers, replay the same payment.
	fmt.Println("\n--- removing all market makers (Table II ablation) ---")
	ablated := eng.Clone()
	removed := ablated.RemoveMarketMakers()
	fmt.Printf("removed %d market maker(s); offers left: %d\n", len(removed), ablated.Books().NumOffers())

	tx := &ledger.Tx{
		Type:        ledger.TxPayment,
		Account:     alice.AccountID(),
		Sequence:    ablated.NextSequence(alice.AccountID()),
		Fee:         10,
		Destination: shop.AccountID(),
		Amount:      amount.MustAmount("100/USD"),
		SendMax:     amount.MustAmount("95/EUR"),
	}
	tx.Sign(alice)
	meta2, err := ablated.Apply(tx)
	if err != nil {
		return err
	}
	fmt.Printf("the same payment without market makers: %s\n", meta2.Result)
	fmt.Println("\n\"Without them and their exchange offers it would be impossible")
	fmt.Println(" to make cross-currency payments.\" — §C of the paper's appendix")
	return nil
}
