// Package shamap implements a SHAMap-style authenticated radix tree: the
// Merkle structure rippled keeps over every ledger object, rebuilt here
// over the study engine's accounts, trust pairs, and offers. Keys are
// 256-bit object hashes; the tree branches on successive key nibbles, so
// lookups and updates touch at most 64 nodes and the structure is a pure
// function of the key set (inner nodes with a single leaf child collapse
// on delete, exactly undoing the split that insertion performs).
//
// Nodes are copy-on-write across generations: Seal hashes the dirty
// paths, stamps a root, and bumps the tree's generation, after which any
// further mutation copies the nodes it touches instead of editing them
// in place. A ledger close therefore re-hashes only the O(changed·depth)
// path to the root, and a sealed Snapshot shares all unchanged structure
// with the live tree at zero cost.
//
// The byte encoding of a node (encode.go) is also its hash preimage, so
// a content-addressed store of encoded nodes is self-verifying: fetching
// the root hash and recursing through child hashes (Load) rebuilds the
// tree, and any corrupted byte fails the hash check on the node that
// carries it.
package shamap

import (
	"errors"
	"fmt"

	"ripplestudy/internal/ledger"
)

// node is one tree node: a leaf carrying a key/value pair, or an inner
// node with up to 16 children, one per nibble.
type node struct {
	// gen is the tree generation that owns this node; mutating a node
	// from an older generation copies it first (copy-on-write).
	gen uint64

	hash   ledger.Hash
	hashed bool // hash is valid for the current content
	saved  bool // content has been handed to WriteNew (or came from Load)

	leaf     bool
	key      ledger.Hash // leaf only
	value    []byte      // leaf only; owned by the tree
	children [16]*node   // inner only
}

// Tree is the authenticated map. It is not safe for concurrent
// mutation; concurrent readers are safe while no writer runs.
type Tree struct {
	root *node
	gen  uint64
	size int
	// dirty is set by any mutation since the last Seal; WriteNew and
	// Snapshot require a sealed tree.
	dirty bool
	// lastRoot is the root hash Seal last produced (zero before the
	// first Seal; the empty tree seals to the zero hash).
	lastRoot ledger.Hash
}

// New creates an empty tree.
func New() *Tree { return &Tree{} }

// Len returns the number of leaves.
func (t *Tree) Len() int { return t.size }

// Root returns the root hash produced by the last Seal. It is the zero
// hash before the first Seal and for an empty tree.
func (t *Tree) Root() ledger.Hash { return t.lastRoot }

// nibble returns the d-th 4-bit digit of the key (big-endian, so nibble
// 0 is the high half of key[0]). Two distinct keys diverge at some
// nibble < 64.
func nibble(key ledger.Hash, d int) int {
	b := key[d>>1]
	if d&1 == 0 {
		return int(b >> 4)
	}
	return int(b & 0x0f)
}

// editable returns a node safe to mutate in the current generation,
// copying nodes sealed into earlier generations. Either way the node's
// cached hash and saved mark are invalidated.
func (t *Tree) editable(n *node) *node {
	if n.gen != t.gen {
		cp := *n
		cp.gen = t.gen
		n = &cp
	}
	n.hashed = false
	n.saved = false
	return n
}

// Get returns the value stored under key. The returned slice is owned
// by the tree: callers must not mutate it.
func (t *Tree) Get(key ledger.Hash) ([]byte, bool) {
	n := t.root
	for depth := 0; n != nil; depth++ {
		if n.leaf {
			if n.key == key {
				return n.value, true
			}
			return nil, false
		}
		n = n.children[nibble(key, depth)]
	}
	return nil, false
}

// Set inserts or replaces the value under key. The value bytes are
// copied in.
func (t *Tree) Set(key ledger.Hash, value []byte) {
	v := append([]byte(nil), value...)
	t.dirty = true
	t.root = t.set(t.root, 0, key, v)
}

func (t *Tree) set(n *node, depth int, key ledger.Hash, value []byte) *node {
	if n == nil {
		t.size++
		return &node{gen: t.gen, leaf: true, key: key, value: value}
	}
	if n.leaf {
		if n.key == key {
			n = t.editable(n)
			n.value = value
			return n
		}
		// Split: push the existing leaf one level down and retry. When
		// both keys share this nibble the recursion splits again, growing
		// the chain of single-child inner nodes the keys' common prefix
		// dictates.
		inner := &node{gen: t.gen}
		inner.children[nibble(n.key, depth)] = n
		return t.set(inner, depth, key, value)
	}
	n = t.editable(n)
	b := nibble(key, depth)
	n.children[b] = t.set(n.children[b], depth+1, key, value)
	return n
}

// Delete removes the leaf under key, reporting whether it existed.
func (t *Tree) Delete(key ledger.Hash) bool {
	root, ok := t.del(t.root, 0, key)
	if !ok {
		return false
	}
	t.dirty = true
	t.root = root
	t.size--
	return true
}

func (t *Tree) del(n *node, depth int, key ledger.Hash) (*node, bool) {
	if n == nil {
		return nil, false
	}
	if n.leaf {
		if n.key == key {
			return nil, true
		}
		return n, false
	}
	b := nibble(key, depth)
	child, ok := t.del(n.children[b], depth+1, key)
	if !ok {
		return n, false
	}
	n = t.editable(n)
	n.children[b] = child
	// Collapse: an inner node left holding a single leaf becomes that
	// leaf, restoring the canonical shape a from-scratch build of the
	// remaining keys would produce. A single *inner* child stays: all
	// keys below it share this node's nibble path, so the chain is
	// canonical. An emptied node vanishes (only possible transiently,
	// via the recursive collapse itself).
	var only *node
	count := 0
	for _, c := range n.children {
		if c != nil {
			count++
			only = c
		}
	}
	switch {
	case count == 0:
		return nil, true
	case count == 1 && only.leaf:
		return only, true
	}
	return n, true
}

// Seal hashes every node dirtied since the previous Seal, stamps the
// root, and opens a new copy-on-write generation. The empty tree seals
// to the zero hash.
func (t *Tree) Seal() ledger.Hash {
	var scratch []byte
	root := hashNode(t.root, &scratch)
	t.lastRoot = root
	t.gen++
	t.dirty = false
	return root
}

// hashNode computes (and caches) the node's hash, recursing only into
// children whose caches were invalidated.
func hashNode(n *node, scratch *[]byte) ledger.Hash {
	if n == nil {
		return ledger.Hash{}
	}
	if !n.hashed {
		if !n.leaf {
			for _, c := range n.children {
				if c != nil {
					hashNode(c, scratch)
				}
			}
		}
		*scratch = appendNode((*scratch)[:0], n)
		n.hash = ledger.SHA512Half(*scratch)
		n.hashed = true
	}
	return n.hash
}

// ErrUnsealed is returned by operations that require a sealed tree.
var ErrUnsealed = errors.New("shamap: tree has unsealed mutations")

// Snapshot returns a read-snapshot of the sealed tree sharing all
// structure with it. Both trees remain fully usable: the first mutation
// on either side copies the path it touches. It errors if the tree has
// been mutated since the last Seal.
func (t *Tree) Snapshot() (*Tree, error) {
	if t.dirty {
		return nil, ErrUnsealed
	}
	return &Tree{root: t.root, gen: t.gen, size: t.size, lastRoot: t.lastRoot}, nil
}

// Walk visits every leaf in key order (the radix order of the tree).
func (t *Tree) Walk(fn func(key ledger.Hash, value []byte) error) error {
	return walk(t.root, fn)
}

func walk(n *node, fn func(key ledger.Hash, value []byte) error) error {
	if n == nil {
		return nil
	}
	if n.leaf {
		return fn(n.key, n.value)
	}
	for _, c := range n.children {
		if c == nil {
			continue
		}
		if err := walk(c, fn); err != nil {
			return err
		}
	}
	return nil
}

// WriteNew emits the encoded form of every node reachable from the
// sealed root that has not yet been emitted — nodes created or changed
// since the last WriteNew (nodes materialized by Load count as already
// written). Children are emitted before their parents. The data slice
// passed to put is reused between calls; implementations that retain it
// must copy. Emitted nodes are marked, so successive WriteNew calls
// across seals together persist exactly the union of the trees, which a
// content-addressed store reassembles from any subset containing the
// latest root's closure.
func (t *Tree) WriteNew(put func(h ledger.Hash, data []byte) error) (int, error) {
	if t.dirty {
		return 0, ErrUnsealed
	}
	var scratch []byte
	return writeNode(t.root, &scratch, put)
}

func writeNode(n *node, scratch *[]byte, put func(h ledger.Hash, data []byte) error) (int, error) {
	if n == nil || n.saved {
		return 0, nil
	}
	count := 0
	if !n.leaf {
		for _, c := range n.children {
			if c == nil {
				continue
			}
			nc, err := writeNode(c, scratch, put)
			if err != nil {
				return count, err
			}
			count += nc
		}
	}
	// A sealed, unsaved node always has a valid cached hash.
	*scratch = appendNode((*scratch)[:0], n)
	if err := put(n.hash, *scratch); err != nil {
		return count, err
	}
	n.saved = true
	return count + 1, nil
}

// Load materializes the tree sealed under root from a content-addressed
// node source: get must return the encoded node stored under the given
// hash. Every fetched node is verified against the hash that named it,
// so the returned tree is authenticated by root. A zero root loads the
// empty tree. The loaded tree reports root from Root() and is ready for
// further mutation (copy-on-write against the loaded nodes).
func Load(root ledger.Hash, get func(ledger.Hash) ([]byte, error)) (*Tree, error) {
	t := &Tree{gen: 1, lastRoot: root}
	if root.IsZero() {
		return t, nil
	}
	n, size, err := loadNode(root, get, 0)
	if err != nil {
		return nil, err
	}
	t.root = n
	t.size = size
	return t, nil
}

func loadNode(h ledger.Hash, get func(ledger.Hash) ([]byte, error), depth int) (*node, int, error) {
	if depth > maxDepth {
		return nil, 0, fmt.Errorf("shamap: load: node %s beyond max depth", h.Short())
	}
	data, err := get(h)
	if err != nil {
		return nil, 0, fmt.Errorf("shamap: load %s: %w", h.Short(), err)
	}
	if ledger.SHA512Half(data) != h {
		return nil, 0, fmt.Errorf("shamap: load %s: content does not hash to its key", h.Short())
	}
	dec, err := DecodeNode(data)
	if err != nil {
		return nil, 0, fmt.Errorf("shamap: load %s: %w", h.Short(), err)
	}
	if dec.Leaf {
		n := &node{
			leaf:   true,
			key:    dec.Key,
			value:  append([]byte(nil), dec.Value...),
			hash:   h,
			hashed: true,
			saved:  true,
		}
		return n, 1, nil
	}
	n := &node{hash: h, hashed: true, saved: true}
	size := 0
	for i, ch := range dec.Children {
		if ch.IsZero() {
			continue
		}
		c, sz, err := loadNode(ch, get, depth+1)
		if err != nil {
			return nil, 0, err
		}
		n.children[i] = c
		size += sz
	}
	return n, size, nil
}

// maxDepth is the deepest possible node: one nibble per level of a
// 256-bit key.
const maxDepth = 64
