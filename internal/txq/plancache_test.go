package txq

import (
	"context"
	"sync"
	"testing"
	"time"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
	"ripplestudy/internal/ledger"
	"ripplestudy/internal/pathfind"
	"ripplestudy/internal/payment"
)

func val(s string) amount.Value { return amount.MustParse(s) }

func usd(s string) amount.Amount { return amount.New(amount.USD, val(s)) }

// figure1Engines builds the paper's Figure 1 trust topology (a trusts b
// for 100 USD, b trusts c for 100 USD, so c can pay a through b) twice:
// one engine for the front door, one identical reference for fresh
// differential quotes. Both are driven by the same transactions, so
// their state — and every deterministic search over it — matches.
func figure1Engines(t testing.TB) (live, ref *payment.Engine, a, b, c addr.AccountID) {
	t.Helper()
	a, b, c = acct(1), acct(2), acct(3)
	build := func() *payment.Engine {
		eng := payment.NewEngine()
		for _, id := range []addr.AccountID{a, b, c} {
			eng.Fund(id, 100_000_000)
		}
		trust := func(truster, trustee addr.AccountID) {
			tx := &ledger.Tx{
				Type:      ledger.TxTrustSet,
				Account:   truster,
				Sequence:  eng.NextSequence(truster),
				Fee:       10,
				LimitPeer: trustee,
				Limit:     usd("100"),
			}
			meta, err := eng.Apply(tx)
			if err != nil || !meta.Result.Succeeded() {
				t.Fatalf("trust set: %v %v", err, meta)
			}
		}
		trust(a, b)
		trust(b, c)
		return eng
	}
	return build(), build(), a, b, c
}

// freshQuote computes the reference answer with a plain finder over the
// reference engine.
func freshQuote(t testing.TB, eng *payment.Engine, src, dst addr.AccountID, deliver amount.Amount) *pathfind.Plan {
	t.Helper()
	f := pathfind.New(eng.Graph(), eng.Books())
	plan, err := f.FindPayment(src, dst, deliver.Currency, deliver)
	if err != nil {
		t.Fatalf("reference quote: %v", err)
	}
	return plan
}

// TestPlanCacheDifferential pins cached quotes == fresh Finder results
// across trust-graph epochs: a hit must replay the exact liquidity a
// fresh search would compute, an applied payment that mutates a
// trustline on the cached path must invalidate the entry, and an
// unrelated mutation (advancing the epoch without touching the path)
// must NOT.
func TestPlanCacheDifferential(t *testing.T) {
	live, ref, a, _, c := figure1Engines(t)
	d, e := acct(8), acct(9)
	live.Fund(d, 1_000_000) // before New: the front door owns the engine afterwards
	fd := New(live, Options{QueueDepth: 16, Backpressure: true})
	defer fd.Close()

	deliver := usd("10")

	// Cold quote, then a cache hit; both must equal the fresh reference.
	q1, err := fd.PathFind(c, a, amount.USD, deliver)
	if err != nil {
		t.Fatal(err)
	}
	if q1.Cached {
		t.Fatal("first quote served from an empty cache")
	}
	q2, err := fd.PathFind(c, a, amount.USD, deliver)
	if err != nil {
		t.Fatal(err)
	}
	if !q2.Cached {
		t.Fatal("second identical quote missed the cache")
	}
	want := freshQuote(t, ref, c, a, deliver)
	for _, q := range []Quote{q1, q2} {
		if !q.Found || q.Delivered.Cmp(want.Delivered) != 0 || q.SourceCost.Cmp(want.SourceCost) != 0 {
			t.Fatalf("quote %+v != fresh finder (delivered %s cost %s)", q, want.Delivered, want.SourceCost)
		}
	}

	// Apply a payment that consumes trust on the cached path (c→a moves
	// value over both trustlines). The cache entry's read set includes
	// those accounts, so the NEXT quote must be recomputed — and must
	// match a fresh search over the mutated reference state.
	pay := &ledger.Tx{
		Type:        ledger.TxPayment,
		Account:     c,
		Sequence:    0, // auto
		Fee:         10,
		Destination: a,
		Amount:      usd("4"),
	}
	tk, err := fd.Submit(pay)
	if err != nil {
		t.Fatal(err)
	}
	st, err := tk.Wait(context.Background())
	if err != nil || !st.Succeeded {
		t.Fatalf("payment on cached path: %v %+v", err, st)
	}
	refPay := *pay
	refPay.Sequence = ref.NextSequence(c)
	if meta, err := ref.Apply(&refPay); err != nil || !meta.Result.Succeeded() {
		t.Fatalf("reference payment: %v %v", err, meta)
	}

	q3, err := fd.PathFind(c, a, amount.USD, deliver)
	if err != nil {
		t.Fatal(err)
	}
	if q3.Cached {
		t.Fatal("quote after an on-path mutation served stale from the cache")
	}
	if q3.Epoch <= q1.Epoch {
		t.Fatalf("epoch did not advance past the applied batch (was %d, now %d)", q1.Epoch, q3.Epoch)
	}
	want3 := freshQuote(t, ref, c, a, deliver)
	if !q3.Found || q3.Delivered.Cmp(want3.Delivered) != 0 || q3.SourceCost.Cmp(want3.SourceCost) != 0 {
		t.Fatalf("post-mutation quote %+v != fresh finder (delivered %s)", q3, want3.Delivered)
	}

	// An unrelated trust-line mutation advances the epoch but touches
	// nothing in the entry's read set: the cached q3 stays valid across
	// the epoch boundary.
	unrelated := &ledger.Tx{
		Type:      ledger.TxTrustSet,
		Account:   d,
		Sequence:  0,
		Fee:       10,
		LimitPeer: e,
		Limit:     usd("5"),
	}
	tk2, err := fd.Submit(unrelated)
	if err != nil {
		t.Fatal(err)
	}
	if st2, err := tk2.Wait(context.Background()); err != nil || !st2.Succeeded {
		t.Fatalf("unrelated trust set: %v %+v", err, st2)
	}
	q4, err := fd.PathFind(c, a, amount.USD, deliver)
	if err != nil {
		t.Fatal(err)
	}
	if !q4.Cached {
		t.Fatal("unrelated mutation invalidated an untouched cache entry (epoch-keyed instead of read-set-keyed)")
	}
	if q4.Delivered.Cmp(want3.Delivered) != 0 {
		t.Fatalf("cached quote drifted: %s != %s", q4.Delivered, want3.Delivered)
	}
	if fd.Epoch() <= q3.Epoch {
		t.Fatal("unrelated mutation did not advance the epoch")
	}
}

// TestPlanCacheNegativeQuoteInvalidation pins the "no path" case: a
// cached PathDry answer must be invalidated when a trust line CREATES
// the path (the failed search's read set records the endpoints it
// probed).
func TestPlanCacheNegativeQuoteInvalidation(t *testing.T) {
	eng := payment.NewEngine()
	a, b := acct(1), acct(2)
	eng.Fund(a, 100_000_000)
	eng.Fund(b, 100_000_000)
	fd := New(eng, Options{QueueDepth: 16, Backpressure: true})
	defer fd.Close()

	deliver := usd("5")
	q1, err := fd.PathFind(b, a, amount.USD, deliver)
	if err != nil {
		t.Fatal(err)
	}
	if q1.Found {
		t.Fatal("found a path in an empty trust graph")
	}
	if q, err := fd.PathFind(b, a, amount.USD, deliver); err != nil || !q.Cached {
		t.Fatalf("negative quote not cached: %+v %v", q, err)
	}

	// a trusts b → b can now pay a directly.
	trust := &ledger.Tx{
		Type: ledger.TxTrustSet, Account: a, Sequence: 0, Fee: 10,
		LimitPeer: b, Limit: usd("50"),
	}
	tk, err := fd.Submit(trust)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := tk.Wait(context.Background()); err != nil || !st.Succeeded {
		t.Fatalf("trust set: %v %+v", err, st)
	}
	q2, err := fd.PathFind(b, a, amount.USD, deliver)
	if err != nil {
		t.Fatal(err)
	}
	if q2.Cached {
		t.Fatal("stale negative quote served after the path was created")
	}
	if !q2.Found || q2.Delivered.Cmp(val("5")) != 0 {
		t.Fatalf("quote after trust creation = %+v, want 5 USD deliverable", q2)
	}
}

// TestPlanCacheConcurrentQuotesAndSubmissions races quote readers
// against the applier under -race: every quote must be coherent (either
// the pre- or post-mutation liquidity, never a torn value) and the final
// drained quote must equal a fresh reference search.
func TestPlanCacheConcurrentQuotesAndSubmissions(t *testing.T) {
	live, ref, a, _, c := figure1Engines(t)
	fd := New(live, Options{QueueDepth: 64, Backpressure: true})

	deliver := usd("2")
	var wg sync.WaitGroup
	stopQuotes := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopQuotes:
					return
				default:
				}
				if _, err := fd.PathFind(c, a, amount.USD, deliver); err != nil {
					t.Errorf("concurrent quote: %v", err)
					return
				}
			}
		}()
	}

	// Ten small payments over the quoted path, mirrored on the reference
	// engine afterwards.
	for i := 0; i < 10; i++ {
		pay := &ledger.Tx{
			Type: ledger.TxPayment, Account: c, Sequence: 0, Fee: 10,
			Destination: a, Amount: usd("1"),
		}
		tk, err := fd.Submit(pay)
		if err != nil {
			t.Fatal(err)
		}
		if st, err := tk.Wait(context.Background()); err != nil || !st.Succeeded {
			t.Fatalf("payment %d: %v %+v", i, err, st)
		}
	}
	close(stopQuotes)
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := fd.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		pay := &ledger.Tx{
			Type: ledger.TxPayment, Account: c, Sequence: ref.NextSequence(c), Fee: 10,
			Destination: a, Amount: usd("1"),
		}
		if meta, err := ref.Apply(pay); err != nil || !meta.Result.Succeeded() {
			t.Fatalf("reference payment %d: %v %v", i, err, meta)
		}
	}
	got, err := fd.PathFind(c, a, amount.USD, deliver)
	if err != nil {
		t.Fatal(err)
	}
	want := freshQuote(t, ref, c, a, deliver)
	if !got.Found || got.Delivered.Cmp(want.Delivered) != 0 {
		t.Fatalf("final quote %+v != fresh reference (delivered %s)", got, want.Delivered)
	}
	fd.Close()
}

// TestPlanCacheEviction pins FIFO capacity eviction.
func TestPlanCacheEviction(t *testing.T) {
	c := newPlanCache(2)
	mk := func(i uint64) quoteKey {
		return quoteKey{src: acct(i), dst: acct(i + 100), srcCur: amount.USD, dstCur: amount.USD, deliver: val("1")}
	}
	var rs pathfind.ReadSet
	rs.Accounts = append(rs.Accounts, acct(1))
	c.put(mk(1), Quote{Found: true}, rs)
	c.put(mk(2), Quote{Found: true}, rs)
	c.put(mk(3), Quote{Found: true}, rs) // evicts mk(1)
	if _, ok := c.get(mk(1)); ok {
		t.Error("oldest entry not evicted")
	}
	if _, ok := c.get(mk(3)); !ok {
		t.Error("newest entry missing")
	}
	_, _, _, evicted, size := c.statsNow()
	if evicted != 1 || size != 2 {
		t.Errorf("evicted=%d size=%d, want 1/2", evicted, size)
	}
}
