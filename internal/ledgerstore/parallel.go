package ledgerstore

import (
	"context"
	"runtime"
	"sync"

	"ripplestudy/internal/ledger"
)

// forEachSegmentParallel runs `run` once per segment file on up to
// `workers` goroutines, cancelling everything on the first error and
// returning it. workers < 1 defaults to GOMAXPROCS. run's worker index
// satisfies 0 ≤ w < workers.
func (s *Store) forEachSegmentParallel(ctx context.Context, workers int, run func(ctx context.Context, w int, seg string) error) error {
	if err := s.closeCurrent(); err != nil {
		return err
	}
	segs, err := segmentFiles(s.dir)
	if err != nil {
		return err
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(segs) {
		workers = len(segs)
	}
	if workers <= 1 {
		for _, seg := range segs {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := run(ctx, 0, seg); err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		once     sync.Once
		firstErr error
	)
	fail := func(err error) {
		once.Do(func() {
			firstErr = err
			cancel()
		})
	}

	work := make(chan string)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for seg := range work {
				if err := run(ctx, w, seg); err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}

feed:
	for _, seg := range segs {
		select {
		case work <- seg:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()
	// Cancellation without a worker error (parent ctx cancelled mid-feed)
	// still has to surface.
	fail(ctx.Err())
	return firstErr
}

// PagesParallel streams every stored page to fn, decoding segments
// concurrently on up to `workers` goroutines.
//
// Ordering: pages within one segment arrive in append order, but
// segments are interleaved arbitrarily across workers — callers needing
// global order must use Pages or reorder by header sequence. fn is
// called concurrently from up to `workers` goroutines; the worker index
// (0 ≤ w < workers) identifies the calling goroutine so callers can
// keep per-worker state (e.g. one deanon.Feeder each) without locking.
//
// The first error — fn's, a decode failure, or ctx cancellation — stops
// all workers and is returned. A workers value < 1 defaults to
// GOMAXPROCS. Like Pages, a truncated final record is tolerated and a
// checksum mismatch returns ErrCorrupted. Pages are heap-decoded and
// safe to retain; scans that release pages before returning should use
// PagesParallelArena instead and skip the decode garbage.
func (s *Store) PagesParallel(ctx context.Context, workers int, fn func(worker int, p *ledger.Page) error) error {
	return s.forEachSegmentParallel(ctx, workers, func(ctx context.Context, w int, seg string) error {
		return streamSegment(seg, func(p *ledger.Page) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			return fn(w, p)
		})
	})
}

// PagesParallelArena is PagesParallel with per-worker arena decoding:
// each worker owns one ledger.PageArena reused for every page it
// decodes, so a steady-state scan allocates almost nothing.
//
// Recycling contract: the page passed to fn (and every transaction,
// metadata record, and byte slice reachable from it) is valid only
// until fn returns — the worker's next decode resets the arena. fn must
// copy anything it keeps. Consumers that retain pages (the serve
// backfill queues, for example) must use PagesParallel instead.
func (s *Store) PagesParallelArena(ctx context.Context, workers int, fn func(worker int, p *ledger.Page) error) error {
	return s.forEachSegmentParallel(ctx, workers, func(ctx context.Context, w int, seg string) error {
		a := arenaPool.Get().(*ledger.PageArena)
		defer arenaPool.Put(a)
		return streamSegmentArena(seg, a, func(p *ledger.Page) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			return fn(w, p)
		})
	})
}

// arenaPool recycles decode arenas across scans so repeated
// PagesParallelArena/ScanPayments calls (the live serve layer's
// refresh cadence) reuse warmed slabs.
var arenaPool = sync.Pool{New: func() any { return new(ledger.PageArena) }}

// PayloadsParallel streams every CRC-verified record payload (one
// canonical page encoding each) to fn on up to `workers` goroutines,
// without decoding anything — the rawest scan surface, for consumers
// that project the fields they need straight out of the encoding
// (ledger.VisitTxs / ledger.ScanPayments) and own the result.
//
// The payload aliases the segment's (possibly memory-mapped) bytes and
// is valid only inside fn; retain copies, not the slice. Ordering and
// error semantics match PagesParallel: per-segment append order,
// arbitrary interleaving across segments, first error (fn's, a
// corrupted record, or ctx cancellation) stops all workers.
func (s *Store) PayloadsParallel(ctx context.Context, workers int, fn func(worker int, payload []byte) error) error {
	return s.forEachSegmentParallel(ctx, workers, func(ctx context.Context, w int, seg string) error {
		n := 0
		return forEachRecord(seg, func(payload []byte) error {
			// Poll cancellation every few records; the callback itself
			// is typically well under a microsecond.
			if n++; n&63 == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			return fn(w, payload)
		})
	})
}

// ScanPayments streams every successful payment in the store through
// the zero-copy projection (ledger.ScanPayments) on up to `workers`
// goroutines — the fastest way to feed payment-only consumers like the
// Figure 3 de-anonymization sweep: no *Page, *Tx, or *TxMeta is ever
// materialized.
//
// The *ledger.PaymentView passed to fn is reused by that worker and
// valid only inside the call; all its fields are plain values, so
// copying what's needed is cheap. Ordering and error semantics match
// PagesParallel (per-segment order, arbitrary interleaving across
// segments, first error wins).
func (s *Store) ScanPayments(ctx context.Context, workers int, fn func(worker int, pv *ledger.PaymentView) error) error {
	return s.forEachSegmentParallel(ctx, workers, func(ctx context.Context, w int, seg string) error {
		n := 0
		return scanSegmentPayments(seg, func(pv *ledger.PaymentView) error {
			// Poll cancellation every few hundred payments, not every
			// payment: the projection callback is only tens of
			// nanoseconds of work.
			if n++; n&255 == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			return fn(w, pv)
		})
	})
}
