// Command ledger-export streams a ledgerstore as newline-delimited JSON
// (one page per line) to stdout or a file — the interchange path for
// external tooling, and a human-inspectable view of the binary store.
//
//	ledger-export -store ./history | head -1 | jq .
package main

import (
	"flag"
	"fmt"
	"os"

	"ripplestudy/internal/ledgerstore"
)

func main() {
	storeDir := flag.String("store", "history", "ledgerstore directory")
	out := flag.String("out", "-", "output file (- for stdout)")
	flag.Parse()

	if err := run(*storeDir, *out); err != nil {
		fmt.Fprintln(os.Stderr, "ledger-export:", err)
		os.Exit(1)
	}
}

func run(storeDir, out string) error {
	store, err := ledgerstore.Open(storeDir)
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := store.ExportJSON(w); err != nil {
		return err
	}
	if out != "-" {
		st, err := store.Stats()
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "ledger-export: %d pages, %d transactions exported to %s\n",
			st.Pages, st.Transactions, out)
	}
	return nil
}
