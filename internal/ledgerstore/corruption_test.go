package ledgerstore

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"ripplestudy/internal/faultnet"
	"ripplestudy/internal/ledger"
)

// buildStore writes n chained empty pages and returns the store dir and
// its segment files.
func buildStore(t *testing.T, n int, segmentBytes int64) (string, []string) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "store")
	s, err := Create(dir, WithSegmentBytes(segmentBytes))
	if err != nil {
		t.Fatal(err)
	}
	var prev ledger.Hash
	for i := 1; i <= n; i++ {
		page := &ledger.Page{
			Header: ledger.PageHeader{
				Sequence:   uint64(i),
				ParentHash: prev,
				TxSetHash:  ledger.TxSetHash(nil),
				CloseTime:  ledger.CloseTime(i),
			},
		}
		prev = page.Header.Hash()
		if err := s.Append(page); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := segmentFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		t.Fatal("no segments written")
	}
	return dir, segs
}

// TestVerifyIntegrityTruncatedTail: a mid-write crash leaves a partial
// final record; the store must tolerate it, reporting the intact
// prefix (DESIGN §6's truncated-store failure injection).
func TestVerifyIntegrityTruncatedTail(t *testing.T) {
	const pages = 30
	dir, segs := buildStore(t, pages, 512)
	if err := faultnet.TruncateTail(segs[len(segs)-1], 7); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, WithSegmentBytes(512))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.VerifyIntegrity()
	if err != nil {
		t.Fatalf("VerifyIntegrity after truncation: %v", err)
	}
	if rep.Pages != pages-1 {
		t.Errorf("Pages = %d, want %d (final record truncated away)", rep.Pages, pages-1)
	}
	if !rep.ChainOK || rep.PageErrors != 0 {
		t.Errorf("intact prefix misreported: %+v", rep)
	}
}

// TestVerifyIntegritySingleBitFlip: one flipped payload bit must
// surface as ErrCorrupted — CRC-32 detects every single-bit error.
func TestVerifyIntegritySingleBitFlip(t *testing.T) {
	dir, segs := buildStore(t, 10, DefaultSegmentBytes)
	// Corrupt the middle of the first record's payload.
	head, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	payloadLen := binary.BigEndian.Uint32(head[:4])
	if err := faultnet.FlipBitAt(segs[0], 4+int64(payloadLen)/2, 5); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.VerifyIntegrity(); !errors.Is(err, ErrCorrupted) {
		t.Fatalf("VerifyIntegrity = %v, want ErrCorrupted", err)
	}
}

// TestVerifyIntegrityRandomBitFlipsNeverSilent sweeps deterministic
// random single-bit corruptions (any position: length prefix, payload,
// or checksum) and requires each to be detected — either an explicit
// ErrCorrupted or a shortened, still-consistent page sequence (when the
// flip truncates framing). A full page count with no error would mean
// silently accepted corruption.
func TestVerifyIntegrityRandomBitFlipsNeverSilent(t *testing.T) {
	const pages = 20
	for seed := int64(1); seed <= 25; seed++ {
		dir, segs := buildStore(t, pages, 1024)
		target := segs[int(seed)%len(segs)]
		off, bit, err := faultnet.FlipRandomBit(target, seed)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, WithSegmentBytes(1024))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.VerifyIntegrity()
		if err != nil {
			if !errors.Is(err, ErrCorrupted) {
				t.Errorf("seed %d (flip %s@%d bit %d): unexpected error class: %v",
					seed, filepath.Base(target), off, bit, err)
			}
			continue
		}
		if rep.Pages >= pages {
			t.Errorf("seed %d (flip %s@%d bit %d): corruption went unnoticed: %+v",
				seed, filepath.Base(target), off, bit, rep)
		}
	}
}
