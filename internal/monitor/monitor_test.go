package monitor

import (
	"strings"
	"testing"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/consensus"
	"ripplestudy/internal/ledger"
)

func TestCollectorCountsTotalsAndValids(t *testing.T) {
	c := NewCollector()
	good := addr.KeyPairFromSeed(1).NodeID()
	bad := addr.KeyPairFromSeed(2).NodeID()
	h1 := ledger.SHA512Half([]byte("page1"))
	h2 := ledger.SHA512Half([]byte("page2"))
	garbage := ledger.SHA512Half([]byte("garbage"))

	c.Record(consensus.Event{Kind: consensus.EventValidation, Node: good, LedgerHash: h1})
	c.Record(consensus.Event{Kind: consensus.EventValidation, Node: good, LedgerHash: h2})
	c.Record(consensus.Event{Kind: consensus.EventValidation, Node: bad, LedgerHash: garbage})
	c.Record(consensus.Event{Kind: consensus.EventLedgerClosed, LedgerHash: h1})
	c.Record(consensus.Event{Kind: consensus.EventLedgerClosed, LedgerHash: h2})

	rep := c.Report("test")
	if rep.Rounds != 2 {
		t.Errorf("rounds = %d, want 2", rep.Rounds)
	}
	if len(rep.Validators) != 2 {
		t.Fatalf("validators = %d, want 2", len(rep.Validators))
	}
	byNode := make(map[addr.NodeID]ValidatorStats)
	for _, s := range rep.Validators {
		byNode[s.Node] = s
	}
	if s := byNode[good]; s.Total != 2 || s.Valid != 2 || s.Class() != "active" {
		t.Errorf("good = %+v", s)
	}
	if s := byNode[bad]; s.Total != 1 || s.Valid != 0 || s.Class() != "fork-or-testnet" {
		t.Errorf("bad = %+v", s)
	}
	if c.Events() != 5 {
		t.Errorf("events = %d, want 5", c.Events())
	}
}

func TestCollectorVerifiesSignatures(t *testing.T) {
	c := NewCollector()
	kp := addr.KeyPairFromSeed(1)
	h := ledger.SHA512Half([]byte("page"))
	c.Record(consensus.Event{
		Kind: consensus.EventValidation, Node: kp.NodeID(),
		LedgerHash: h, Signature: kp.Sign(h[:]),
	})
	c.Record(consensus.Event{
		Kind: consensus.EventValidation, Node: kp.NodeID(),
		LedgerHash: h, Signature: []byte("forged signature forged sig"),
	})
	rep := c.Report("sig")
	if rep.Validators[0].BadSignatures != 1 {
		t.Errorf("bad signatures = %d, want 1", rep.Validators[0].BadSignatures)
	}
}

func TestReportOrdering(t *testing.T) {
	c := NewCollector()
	n1 := addr.KeyPairFromSeed(1).NodeID()
	n2 := addr.KeyPairFromSeed(2).NodeID()
	n3 := addr.KeyPairFromSeed(3).NodeID()
	c.SetLabel(n1, "zebra.example")
	c.SetLabel(n2, "R3")
	c.SetLabel(n3, "alpha.example")
	h := ledger.SHA512Half([]byte("p"))
	for _, n := range []addr.NodeID{n1, n2, n3} {
		c.Record(consensus.Event{Kind: consensus.EventValidation, Node: n, LedgerHash: h})
	}
	rep := c.Report("order")
	if rep.Validators[0].Label != "R3" {
		t.Errorf("first = %s, want Ripple Labs first", rep.Validators[0].Label)
	}
	if rep.Validators[1].Label != "alpha.example" || rep.Validators[2].Label != "zebra.example" {
		t.Errorf("ordering = %s, %s", rep.Validators[1].Label, rep.Validators[2].Label)
	}
}

func TestUnlabeledValidatorShowsTruncatedKey(t *testing.T) {
	c := NewCollector()
	n := addr.KeyPairFromSeed(9).NodeID()
	c.Record(consensus.Event{Kind: consensus.EventValidation, Node: n, LedgerHash: ledger.Hash{1}})
	rep := c.Report("keys")
	if !strings.Contains(rep.Validators[0].Label, "...") {
		t.Errorf("label = %q, want truncated key form", rep.Validators[0].Label)
	}
	if !strings.HasPrefix(rep.Validators[0].Label, "n") {
		t.Errorf("label = %q, want n-prefixed node key", rep.Validators[0].Label)
	}
}

func TestCollectPeriodEndToEnd(t *testing.T) {
	// A scaled-down December 2015: the report must reproduce the
	// paper's structural findings.
	spec := consensus.December2015(120)
	rep, err := CollectPeriod(spec, consensus.Config{Seed: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Validators) != 34 {
		t.Errorf("observed %d validators, want 34", len(rep.Validators))
	}
	if rep.Rounds < 100 {
		t.Errorf("validated rounds = %d, want ≈120", rep.Rounds)
	}
	// R1–R5 plus 3 unidentified actives: 8 validators comparable to the
	// busiest.
	if got := rep.ActiveCount(0.5); got != 8 {
		t.Errorf("active count = %d, want 8 (R1–R5 + 3 unidentified)", got)
	}
	// 21 validators with zero valid pages.
	if got := rep.ZeroValidCount(); got < 20 || got > 26 {
		t.Errorf("zero-valid count = %d, want ≈21 (forked) possibly plus unsynced laggards", got)
	}
	// Laggards sign plenty but validate almost nothing.
	lagSeen := false
	for _, s := range rep.Validators {
		if s.Label == "mycooldomain.com" {
			lagSeen = true
			if s.Total < 60 {
				t.Errorf("laggard total = %d, want most rounds", s.Total)
			}
			if s.ValidFraction() > 0.3 {
				t.Errorf("laggard valid fraction = %.2f, want small", s.ValidFraction())
			}
		}
	}
	if !lagSeen {
		t.Error("labelled laggard missing from report")
	}
}

func TestRecurringActivesAcrossPeriods(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three consensus periods")
	}
	var reports []Report
	for _, spec := range consensus.Periods(250) {
		rep, err := CollectPeriod(spec, consensus.Config{Seed: 6}, nil)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, rep)
	}
	recurring := RecurringActives(reports, 0.05)
	// The paper: exactly 9 recurring actives over all three periods
	// (R1–R5, the unidentified trio, and the weak recurring contributor);
	// freewallet1/2 and bougalis.net drop out in November (short windows).
	if len(recurring) != 9 {
		t.Errorf("recurring actives = %d, want 9", len(recurring))
	}
	total := TotalObserved(reports)
	// 34+33+39 observations minus overlaps: the paper saw 70 distinct.
	if total < 60 || total > 106 {
		t.Errorf("total observed = %d, want a population in the tens", total)
	}
	t.Logf("recurring actives: %d of %d distinct validators", len(recurring), total)
}

func TestWriteTable(t *testing.T) {
	spec := consensus.December2015(30)
	rep, err := CollectPeriod(spec, consensus.Config{Seed: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := rep.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"December 2015", "R1", "R5", "mycooldomain.com", "xagate.com", "active"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q", want)
		}
	}
	if len(strings.Split(out, "\n")) < 34 {
		t.Error("table shorter than the validator population")
	}
}
