package ledgerstore

import (
	"os"
	"path/filepath"
	"testing"

	"ripplestudy/internal/ledger"
	"ripplestudy/internal/nodestore"
)

func cpRec(i int) (ledger.Hash, []byte) {
	payload := []byte{byte(i), byte(i >> 8), 0xCC}
	return ledger.SHA512Half(payload), payload
}

func writeTestCheckpoint(t *testing.T, dir string, seq uint64, recs ...int) CheckpointMeta {
	t.Helper()
	meta := CheckpointMeta{Seq: seq, Root: ledger.SHA512Half([]byte{byte(seq)})}
	err := WriteCheckpoint(dir, &meta, func(put func(ledger.Hash, []byte) error) (int, error) {
		for _, i := range recs {
			h, p := cpRec(i)
			if err := put(h, p); err != nil {
				return 0, err
			}
		}
		return len(recs), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return meta
}

func TestCheckpointWriteListOpen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), CheckpointDirName)
	m1 := writeTestCheckpoint(t, dir, 100, 1, 2, 3)
	m2 := writeTestCheckpoint(t, dir, 300, 4, 5)
	// Idempotent: a second write at the same sequence is a no-op.
	again := CheckpointMeta{Seq: 100, Root: ledger.Hash{0xFF}}
	if err := WriteCheckpoint(dir, &again, func(func(ledger.Hash, []byte) error) (int, error) {
		t.Fatal("emit ran for an existing checkpoint")
		return 0, nil
	}); err != nil {
		t.Fatal(err)
	}

	metas, err := ListCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 2 || metas[0].Seq != 100 || metas[1].Seq != 300 {
		t.Fatalf("listed %+v", metas)
	}
	if metas[0].NewNodes != 3 || metas[0].NodesBytes != m1.NodesBytes {
		t.Fatalf("first meta %+v, wrote %+v", metas[0], m1)
	}

	// The layered getter unions both batches.
	getter, err := OpenCheckpointNodes(dir, metas)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{1, 2, 3, 4, 5} {
		h, p := cpRec(i)
		got, err := getter.Get(h)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if string(got) != string(p) {
			t.Fatalf("record %d: got %x", i, got)
		}
	}
	_ = m2
}

func TestListCheckpointsSkipsDamage(t *testing.T) {
	dir := filepath.Join(t.TempDir(), CheckpointDirName)
	writeTestCheckpoint(t, dir, 100, 1)
	writeTestCheckpoint(t, dir, 200, 2)
	writeTestCheckpoint(t, dir, 300, 3)

	// 100: nodes file truncated (size mismatch vs manifest).
	p100 := checkpointNodesPath(dir, 100)
	blob, err := os.ReadFile(p100)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p100, blob[:len(blob)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	// 200: manifest is garbage.
	if err := os.WriteFile(checkpointMetaPath(dir, 200), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A nodes file with no manifest at all (interrupted write) is ignored.
	if fw, err := nodestore.CreateFile(checkpointNodesPath(dir, 400)); err != nil {
		t.Fatal(err)
	} else {
		fw.Close()
	}

	metas, err := ListCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(metas) != 1 || metas[0].Seq != 300 {
		t.Fatalf("listed %+v, want only seq 300", metas)
	}
}

func TestListCheckpointsNoDir(t *testing.T) {
	metas, err := ListCheckpoints(filepath.Join(t.TempDir(), "missing"))
	if err != nil || metas != nil {
		t.Fatalf("got %v, %v; want empty, nil", metas, err)
	}
}
