package integration

import (
	"context"
	"net"
	"reflect"
	"testing"
	"time"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/consensus"
	"ripplestudy/internal/faultnet"
	"ripplestudy/internal/monitor"
	"ripplestudy/internal/netstream"
)

// TestChaosCollectionMatchesCleanRun is the tentpole robustness proof:
// a Fig. 2 collection through a stream degraded with >20% injected
// disconnects, corruption, and truncation produces a per-validator
// total/valid table identical to the fault-free run. Sequence-numbered
// events, the server's replay ring, and the resilient client's
// dedup/gap-repair make the measurement immune to the transport's
// faults — exactly the property the paper's two-week windows need.
func TestChaosCollectionMatchesCleanRun(t *testing.T) {
	const rounds = 120
	const seed = 7
	spec := consensus.December2015(rounds)
	labels := func(c *monitor.Collector) {
		for _, s := range spec.Specs {
			if s.Label != "" {
				c.SetLabel(addr.KeyPairFromSeed(s.Seed).NodeID(), s.Label)
			}
		}
	}

	// Fault-free baseline: collector subscribed directly to the network.
	clean := monitor.NewCollector()
	labels(clean)
	cleanNet := consensus.NewNetwork(consensus.Config{Seed: seed, StartTime: spec.Start}, spec.Specs)
	cleanNet.Subscribe(clean.Record)
	if _, err := cleanNet.Run(rounds, nil); err != nil {
		t.Fatal(err)
	}

	// Chaos run: identical network, but collected over TCP through a
	// listener that corrupts, truncates, or kills >20% of writes.
	fcfg := faultnet.Config{
		Seed:         42,
		CorruptRate:  0.12,
		DropRate:     0.08,
		TruncateRate: 0.04,
	}
	var fln *faultnet.Listener
	srv, err := netstream.Serve("127.0.0.1:0",
		netstream.WithReplayRing(1<<15),
		netstream.WithQueueSize(256),
		netstream.WithWriteTimeout(2*time.Second),
		netstream.WithListenerWrapper(func(ln net.Listener) net.Listener {
			fln = faultnet.Wrap(ln, fcfg)
			return fln
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	chaos := monitor.NewCollector()
	labels(chaos)
	rc := netstream.NewResilientClient(srv.Addr(), netstream.ResilientOptions{
		InitialBackoff:         2 * time.Millisecond,
		MaxBackoff:             50 * time.Millisecond,
		DialTimeout:            time.Second,
		ReadTimeout:            25 * time.Millisecond,
		MaxConsecutiveFailures: 5000,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runErr := make(chan error, 1)
	go func() {
		runErr <- rc.Run(ctx, func(ev consensus.Event) error {
			chaos.Record(ev)
			return nil
		})
	}()

	chaosNet := consensus.NewNetwork(consensus.Config{Seed: seed, StartTime: spec.Start}, spec.Specs)
	var last consensus.Event
	chaosNet.Subscribe(func(ev consensus.Event) {
		last = ev
		srv.Publish(ev)
	})
	if _, err := chaosNet.Run(rounds, nil); err != nil {
		t.Fatal(err)
	}
	final := chaosNet.EventsEmitted()
	if final == 0 {
		t.Fatal("network emitted no events")
	}

	// Drive the tail home: the last frames may have been corrupted or
	// cut, and a gap is only detected when a newer event arrives.
	// Republishing the final event (same sequence — duplicates are
	// deduplicated) gives the client that newer event until it has
	// repaired its way to the end of the stream.
	deadline := time.Now().Add(60 * time.Second)
	for rc.LastSeq() < final {
		if time.Now().After(deadline) {
			t.Fatalf("chaos client stuck at seq %d of %d (stats %+v)", rc.LastSeq(), final, rc.Stats())
		}
		srv.Publish(last)
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	if err := <-runErr; err != nil && err != context.Canceled {
		t.Fatalf("Run: %v", err)
	}

	// The measurement must be unaffected by the chaos.
	st := rc.Stats()
	if st.Missed != 0 {
		t.Fatalf("replay ring should have recovered every gap, but %d events were lost (stats %+v)", st.Missed, st)
	}
	cleanRep := clean.Report(spec.Name)
	chaosRep := chaos.Report(spec.Name)
	if !reflect.DeepEqual(cleanRep, chaosRep) {
		t.Errorf("Fig. 2 report differs between clean and chaos runs:\nclean: %+v\nchaos: %+v", cleanRep, chaosRep)
	}

	// The chaos must actually have happened, and the health report must
	// show the pipeline absorbing it.
	fst := fln.Stats()
	if fst.FaultRate() < 0.20 {
		t.Errorf("injected fault rate %.2f, want >= 0.20 (%v)", fst.FaultRate(), fst)
	}
	health := monitor.Health(st, chaos)
	if health.Reconnects == 0 {
		t.Errorf("health reports no reconnects despite injected disconnects: %v", health)
	}
	if health.Gaps == 0 {
		t.Errorf("health reports no gaps despite injected corruption: %v", health)
	}
	if health.BadFrames == 0 {
		t.Errorf("health reports no bad frames despite injected corruption: %v", health)
	}
	if !health.Complete() {
		t.Errorf("collection should be complete: %v", health)
	}
	t.Logf("chaos absorbed: faults %v; health %v", fst, health)
}
