package serve

import (
	"ripplestudy/internal/amount"
	"ripplestudy/internal/analysis"
)

// ecosystemState is the mutable Figures 4–6 view. analysis.Collector is
// already a streaming accumulator, so the incremental maintenance IS
// the batch computation — the view work is sealing its derived
// statistics into immutable snapshots per epoch. The view consumes
// projected records (project.go), not pages: the collector's record
// entry points fold in exactly the statistics the snapshot surfaces,
// bit-identical to Collector.Page over the originals.
type ecosystemState struct {
	col   *analysis.Collector
	pages uint64
}

func newEcosystemState() *ecosystemState {
	return &ecosystemState{col: analysis.NewCollector()}
}

func (e *ecosystemState) apply(rec *pageRecord) {
	e.pages++
	e.col.AddFailedPayments(rec.failed)
	for _, owner := range rec.offerOwners {
		e.col.AddOffer(owner)
	}
	for i := range rec.payments {
		p := &rec.payments[i]
		e.col.AddPayment(p.sender, p.dest, p.currency, p.value,
			rec.hops[p.hopsOff:p.hopsOff+p.hopsLen])
	}
}

// snapshot seals the derived histograms. Every accessor used here
// (CurrencyHistogram, Survival, HopHistogram, ParallelHistogram,
// OfferConcentration) copies out of the collector, so the snapshot
// shares no mutable state with it.
func (e *ecosystemState) snapshot(epoch, appliedSeq uint64) *EcosystemSnapshot {
	grid := analysis.DefaultSurvivalGrid()
	curves := []SurvivalCurve{{Label: "Global", Points: e.col.Survival(amount.Currency{}, true, grid)}}
	for _, cur := range analysis.FeaturedCurrencies() {
		curves = append(curves, SurvivalCurve{Label: cur.String(), Points: e.col.Survival(cur, false, grid)})
	}
	return &EcosystemSnapshot{
		Epoch:              epoch,
		AppliedSeq:         appliedSeq,
		Pages:              e.pages,
		Payments:           e.col.Payments(),
		Failed:             e.col.FailedPayments(),
		MultiHop:           e.col.MultiHopPayments(),
		Offers:             e.col.TotalOffers(),
		ActiveUsers:        e.col.ActiveAccounts(),
		Currencies:         e.col.CurrencyHistogram(),
		Survival:           curves,
		Hops:               e.col.HopHistogram(),
		Parallel:           e.col.ParallelHistogram(),
		OfferConcentration: e.col.OfferConcentration([]int{10, 50, 100}),
	}
}

// SurvivalCurve is one labelled Figure 5 curve.
type SurvivalCurve struct {
	Label  string                   `json:"label"`
	Points []analysis.SurvivalPoint `json:"points"`
}

// EcosystemSnapshot is one sealed epoch of the Figures 4–6 view.
type EcosystemSnapshot struct {
	// Epoch identifies the publish this snapshot came from.
	Epoch uint64 `json:"epoch"`
	// AppliedSeq is the highest ledger sequence folded in.
	AppliedSeq uint64 `json:"applied_seq"`
	// Pages is the number of pages folded in.
	Pages uint64 `json:"pages"`

	Payments    int64 `json:"payments"`
	Failed      int64 `json:"failed"`
	MultiHop    int64 `json:"multi_hop"`
	Offers      int64 `json:"offers"`
	ActiveUsers int   `json:"active_users"`

	// Currencies is Figure 4: currencies by descending payment count.
	Currencies []analysis.CurrencyCount `json:"currencies"`
	// Survival is Figure 5: the global curve plus the paper's featured
	// currencies, sampled on the default grid.
	Survival []SurvivalCurve `json:"survival"`
	// Hops and Parallel are Figures 6(a) and 6(b).
	Hops     map[int]int64 `json:"hops"`
	Parallel map[int]int64 `json:"parallel"`
	// OfferConcentration is the appendix market-maker measurement for
	// k ∈ {10, 50, 100}.
	OfferConcentration map[int]float64 `json:"offer_concentration"`
}
