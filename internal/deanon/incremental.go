package deanon

// IncStudy is the incrementally-maintained counterpart of Study, built
// for the live serving layer (internal/serve): payments arrive one page
// at a time over the lifetime of a long-running process, and both the
// per-resolution information gain and individual sender-uniqueness
// lookups must be answerable in O(1) at any point — not only after a
// closing Results pass.
//
// It reuses the batch pipeline's primitives — FeatureEnc encodes each
// payment once and fingerprints it per resolution, countTable stores
// 9-byte saturating-counter slots — and adds a running unique-count per
// resolution, updated from each increment's pre-count transition
// (0→1 gains a unique fingerprint, 1→2 loses one). Results is therefore
// O(resolutions) instead of Study's O(distinct fingerprints), and
// Lookup is a single open-addressed probe.
//
// An IncStudy is single-writer and not safe for concurrent use; the
// serving layer gives each one a dedicated view goroutine and publishes
// immutable Clones for readers (epoch snapshots).
type IncStudy struct {
	resolutions []Resolution
	plan        *FingerprintPlan
	tables      []*countTable
	unique      []int
	payments    int
	fps         []Fingerprint // per-payment scratch
}

// NewIncStudy prepares an incremental study over the given resolutions.
func NewIncStudy(resolutions []Resolution) *IncStudy {
	s := &IncStudy{
		resolutions: append([]Resolution(nil), resolutions...),
		unique:      make([]int, len(resolutions)),
	}
	s.plan = NewFingerprintPlan(s.resolutions)
	s.fps = make([]Fingerprint, 0, len(resolutions))
	for range resolutions {
		s.tables = append(s.tables, newCountTable())
	}
	return s
}

// Observe folds one payment into every resolution's counts, maintaining
// the running unique-counts. The features are encoded once and
// fingerprinted for all resolutions in one planned pass.
func (s *IncStudy) Observe(f Features) {
	s.payments++
	enc := EncodeFeatures(f)
	s.fps = enc.AppendFingerprints(s.plan, s.fps[:0])
	for i := range s.resolutions {
		switch s.tables[i].incrCount(s.fps[i]) {
		case 0:
			s.unique[i]++
		case 1:
			s.unique[i]--
		}
	}
}

// Payments returns the number of observations folded in.
func (s *IncStudy) Payments() int { return s.payments }

// Resolutions returns the study's resolution rows, in order.
func (s *IncStudy) Resolutions() []Resolution { return s.resolutions }

// Results returns the information gain for every resolution, O(1) per
// row. The rows are bit-identical to a batch Study fed the same
// payments in any order.
func (s *IncStudy) Results() []RowResult {
	out := make([]RowResult, 0, len(s.resolutions))
	for i, res := range s.resolutions {
		ig := 0.0
		if s.payments > 0 {
			ig = float64(s.unique[i]) / float64(s.payments)
		}
		out = append(out, RowResult{Resolution: res, IG: ig, Unique: s.unique[i], Total: s.payments})
	}
	return out
}

// Lookup returns how many observed payments share the observation's
// fingerprint at resolution row i, saturating at 2: 0 = never seen,
// 1 = unique (a successful de-anonymization), 2 = ambiguous. O(1).
func (s *IncStudy) Lookup(i int, f Features) uint8 {
	return s.tables[i].get(FingerprintOf(f, s.resolutions[i]))
}

// LookupFingerprint is Lookup for a precomputed fingerprint.
func (s *IncStudy) LookupFingerprint(i int, fp Fingerprint) uint8 {
	return s.tables[i].get(fp)
}

// DistinctFingerprints reports the number of distinct fingerprints per
// resolution.
func (s *IncStudy) DistinctFingerprints() []int {
	out := make([]int, len(s.resolutions))
	for i := range s.resolutions {
		out[i] = s.tables[i].distinct()
	}
	return out
}

// CountBytes reports the resident footprint of the counting tables.
func (s *IncStudy) CountBytes() int {
	n := 0
	for _, t := range s.tables {
		n += t.bytes()
	}
	return n
}

// Clone deep-copies the study — the copy-on-publish step behind epoch
// snapshots. The clone is an independent IncStudy; treating it as
// read-only makes it safe to share across any number of readers while
// the original keeps ingesting.
func (s *IncStudy) Clone() *IncStudy {
	c := &IncStudy{
		resolutions: s.resolutions,
		plan:        s.plan, // immutable, safe to share
		unique:      append([]int(nil), s.unique...),
		payments:    s.payments,
		fps:         make([]Fingerprint, 0, len(s.resolutions)),
	}
	for _, t := range s.tables {
		c.tables = append(c.tables, t.clone())
	}
	return c
}
