package consensus

import (
	"math"
	"math/rand"
)

// The paper's §IV closes with a proposal: "A solution could be
// introducing a carefully crafted reward system that would stimulate the
// entry of new validation servers in Ripple. For example, the reward
// could be defined as an added tax value to the transactions that go
// through in each validation round. A larger number of validators would
// lead to a better distributed validation process."
//
// SimulateIncentives implements that proposal as an entry/exit economy:
// each epoch, the round tax pools into a reward split among active
// validators; operators join when validating is profitable and leave
// when it is not (except the subsidized Ripple Labs machines, which the
// paper expects "will continue to be available anytime in the future").

// IncentiveConfig parameterizes the reward economy.
type IncentiveConfig struct {
	// TaxPerRound is the added tax value collected from the
	// transactions sealed in one round (in arbitrary value units).
	TaxPerRound float64
	// RoundsPerEpoch converts the per-round tax into an epoch-level
	// reward pool (a 2-week period at 5 s/round is ~242k rounds).
	RoundsPerEpoch int
	// OperatingCost is one validator's cost per epoch ("running a
	// validator is an expensive task").
	OperatingCost float64
	// InitialValidators is the starting population.
	InitialValidators int
	// Subsidized validators never exit regardless of profit (R1–R5).
	Subsidized int
	// ElasticityIn and ElasticityOut scale how fast operators enter on
	// profit and leave on loss, as a fraction of the population per
	// unit of relative profit.
	ElasticityIn, ElasticityOut float64
	// Epochs to simulate.
	Epochs int
	// Seed adds small demand noise; zero keeps the model deterministic.
	Seed int64
}

// withDefaults fills unset fields with the defaults used by the
// extension experiment.
func (c IncentiveConfig) withDefaults() IncentiveConfig {
	if c.RoundsPerEpoch == 0 {
		c.RoundsPerEpoch = FullPeriodRounds
	}
	if c.OperatingCost == 0 {
		c.OperatingCost = 1000
	}
	if c.InitialValidators == 0 {
		c.InitialValidators = 13 // the paper's Dec 2015 active set
	}
	if c.Subsidized == 0 {
		c.Subsidized = 5 // R1–R5
	}
	if c.ElasticityIn == 0 {
		c.ElasticityIn = 0.25
	}
	if c.ElasticityOut == 0 {
		c.ElasticityOut = 0.25
	}
	if c.Epochs == 0 {
		c.Epochs = 50
	}
	return c
}

// IncentivePoint is one epoch of the simulation.
type IncentivePoint struct {
	Epoch      int
	Validators int
	// RewardPerValidator is the epoch pool divided by the population.
	RewardPerValidator float64
	// Profit is RewardPerValidator − OperatingCost.
	Profit float64
	// FaultTolerance is how many validators an attacker must take over
	// or down to break the 80% validation quorum — the paper's
	// robustness measure ("a malicious party hijacking or compromising
	// the majority of these validators could endanger the whole
	// system").
	FaultTolerance int
}

// quorumFaultTolerance returns the number of validators whose loss drops
// the remaining honest signers below 80% of the population.
func quorumFaultTolerance(n int) int {
	if n <= 0 {
		return 0
	}
	quorum := int(math.Ceil(0.8 * float64(n)))
	return n - quorum + 1
}

// SimulateIncentives runs the reward economy and returns the epoch
// series. The equilibrium population approaches pool/cost: the reward
// pool supports exactly as many validators as it can pay for.
func SimulateIncentives(cfg IncentiveConfig) []IncentivePoint {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := float64(cfg.InitialValidators)
	out := make([]IncentivePoint, 0, cfg.Epochs)
	for e := 1; e <= cfg.Epochs; e++ {
		pool := cfg.TaxPerRound * float64(cfg.RoundsPerEpoch)
		if cfg.Seed != 0 {
			pool *= 1 + 0.05*rng.NormFloat64() // demand noise
		}
		reward := 0.0
		if n > 0 {
			reward = pool / n
		}
		profit := reward - cfg.OperatingCost
		rel := profit / cfg.OperatingCost
		switch {
		case rel > 0:
			n += cfg.ElasticityIn * rel * n
		case rel < 0:
			n += cfg.ElasticityOut * rel * n // rel is negative: shrink
		}
		if n < float64(cfg.Subsidized) {
			n = float64(cfg.Subsidized)
		}
		count := int(math.Round(n))
		out = append(out, IncentivePoint{
			Epoch:              e,
			Validators:         count,
			RewardPerValidator: reward,
			Profit:             profit,
			FaultTolerance:     quorumFaultTolerance(count),
		})
	}
	return out
}

// EquilibriumValidators returns the closed-form steady state of the
// model: the population the reward pool can sustain (never below the
// subsidized floor).
func EquilibriumValidators(cfg IncentiveConfig) int {
	cfg = cfg.withDefaults()
	pool := cfg.TaxPerRound * float64(cfg.RoundsPerEpoch)
	eq := pool / cfg.OperatingCost
	if eq < float64(cfg.Subsidized) {
		eq = float64(cfg.Subsidized)
	}
	return int(math.Round(eq))
}
