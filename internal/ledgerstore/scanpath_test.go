package ledgerstore

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"

	"ripplestudy/internal/faultnet"
	"ripplestudy/internal/ledger"
)

// collectPages reads the whole store through Pages into a slice.
func collectPages(t *testing.T, s *Store) []*ledger.Page {
	t.Helper()
	var out []*ledger.Page
	if err := s.Pages(func(p *ledger.Page) error {
		out = append(out, p)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMmapVsFileParity runs the same store through the mmap reader and
// the forced ReadFile fallback and requires bit-identical results —
// the build-tag fallback must not be a subtly different reader.
func TestMmapVsFileParity(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, 17, 3, WithSegmentBytes(2048))
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mapped := collectPages(t, s)
	forceFileRead = true
	defer func() { forceFileRead = false }()
	fallback := collectPages(t, s)
	if !reflect.DeepEqual(mapped, fallback) {
		t.Fatal("mmap and ReadFile paths decoded different pages")
	}
}

// TestOpenSegmentEmptyFile: a zero-byte segment (crash immediately
// after roll) cannot be mapped; the fallback must hand back zero
// records, not an error.
func TestOpenSegmentEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "segment-000001.rlst")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	calls := 0
	if err := forEachRecord(path, func([]byte) error { calls++; return nil }); err != nil {
		t.Fatalf("forEachRecord on empty segment: %v", err)
	}
	if calls != 0 {
		t.Fatalf("empty segment yielded %d records", calls)
	}
}

// TestPagesArenaMatchesPages: the arena-decoded sequential scan must
// see bit-identical pages.
func TestPagesArenaMatchesPages(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, 15, 4, WithSegmentBytes(4096))
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := collectPages(t, s)
	i := 0
	var a ledger.PageArena
	err = s.PagesArena(&a, func(p *ledger.Page) error {
		if i >= len(want) {
			t.Fatal("arena scan yielded extra pages")
		}
		if !reflect.DeepEqual(want[i], p) {
			t.Fatalf("page %d differs between Pages and PagesArena", i)
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != len(want) {
		t.Fatalf("arena scan saw %d pages, want %d", i, len(want))
	}
}

// pageDigest fingerprints a page by its canonical encoding, so scans
// with incompatible retention contracts can still be compared.
func pageDigest(p *ledger.Page) ledger.Hash {
	return ledger.SHA512Half(p.Encode(nil))
}

// TestPagesParallelArenaMatchesPagesParallel compares page-encoding
// digests (the arena contract forbids retaining the pages themselves)
// as multisets across the two parallel scans.
func TestPagesParallelArenaMatchesPagesParallel(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, 24, 3, WithSegmentBytes(1))
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	digests := func(scan func(context.Context, int, func(int, *ledger.Page) error) error) []string {
		var mu sync.Mutex
		var out []string
		err := scan(context.Background(), 4, func(w int, p *ledger.Page) error {
			d := pageDigest(p)
			mu.Lock()
			out = append(out, d.String())
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		sort.Strings(out)
		return out
	}
	if !reflect.DeepEqual(digests(s.PagesParallel), digests(s.PagesParallelArena)) {
		t.Fatal("parallel arena scan digests differ from PagesParallel")
	}
}

// storePayments is the reference projection at store level: full
// decode, then the payment/success filter.
func storePayments(t *testing.T, s *Store) []ledger.PaymentView {
	t.Helper()
	var out []ledger.PaymentView
	if err := s.Pages(func(p *ledger.Page) error {
		for i, tx := range p.Txs {
			m := p.Metas[i]
			if tx.Type != ledger.TxPayment || !m.Result.Succeeded() {
				continue
			}
			out = append(out, ledger.PaymentView{
				Seq: p.Header.Sequence, Time: p.Header.CloseTime, Index: i,
				Sender: tx.Account, Destination: tx.Destination,
				Currency: tx.Amount.Currency, Amount: tx.Amount.Value,
				ParallelPaths: m.ParallelPaths(), MaxHops: m.MaxHops(),
				OffersConsumed: m.OffersConsumed, CrossCurrency: m.CrossCurrency,
			})
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestScanPaymentsMatchesPages: the store-level projection scan must
// yield exactly the payments the full decode path does.
func TestScanPaymentsMatchesPages(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, 19, 5, WithSegmentBytes(4096))
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := storePayments(t, s)
	var got []ledger.PaymentView
	err = s.ScanPayments(context.Background(), 1, func(w int, pv *ledger.PaymentView) error {
		got = append(got, *pv)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("projection scan mismatch: %d vs %d payments", len(want), len(got))
	}
	// And the multiset must survive parallel interleaving.
	var mu sync.Mutex
	var par []ledger.PaymentView
	err = s.ScanPayments(context.Background(), 4, func(w int, pv *ledger.PaymentView) error {
		mu.Lock()
		par = append(par, *pv)
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	byKey := func(vs []ledger.PaymentView) []ledger.PaymentView {
		out := append([]ledger.PaymentView(nil), vs...)
		sort.Slice(out, func(i, j int) bool {
			if out[i].Seq != out[j].Seq {
				return out[i].Seq < out[j].Seq
			}
			return out[i].Index < out[j].Index
		})
		return out
	}
	if !reflect.DeepEqual(byKey(want), byKey(par)) {
		t.Fatal("parallel projection multiset differs")
	}
}

func TestScanPaymentsStops(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, 6, 3, WithSegmentBytes(4096))
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	err = s.ScanPayments(context.Background(), 1, func(w int, pv *ledger.PaymentView) error {
		if n++; n == 5 {
			return ErrStop
		}
		return nil
	})
	if !errors.Is(err, ErrStop) {
		t.Fatalf("err = %v, want ErrStop unwrapped", err)
	}
	if n != 5 {
		t.Fatalf("scanned %d payments after stop, want 5", n)
	}
}

// TestScanPathsAgreeUnderFaultInjection corrupts well over 15% of the
// store's segments and requires every scan path — heap pages, arena
// pages, payment projection, each under both mmap and ReadFile — to
// fail or succeed identically, with identical surviving payments when
// the corruption only truncates framing.
func TestScanPathsAgreeUnderFaultInjection(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		dir := filepath.Join(t.TempDir(), "store")
		writeStore(t, dir, 20, 2, WithSegmentBytes(1)) // one page per segment
		segs, err := segmentFiles(dir)
		if err != nil {
			t.Fatal(err)
		}
		// Corrupt ~25% of segments: bit flips and tail truncations.
		r := rand.New(rand.NewSource(seed))
		for i, seg := range segs {
			if i%4 != int(seed)%4 {
				continue
			}
			if r.Intn(2) == 0 {
				if _, _, err := faultnet.FlipRandomBit(seg, seed+int64(i)); err != nil {
					t.Fatal(err)
				}
			} else if err := faultnet.TruncateTail(seg, int64(r.Intn(8)+1)); err != nil {
				t.Fatal(err)
			}
		}
		s, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}

		type outcome struct {
			payments []ledger.PaymentView
			errClass string
		}
		classify := func(err error) string {
			switch {
			case err == nil:
				return ""
			case errors.Is(err, ErrCorrupted):
				return "corrupted"
			default:
				return "decode:" + err.Error()
			}
		}
		viaPages := func() outcome {
			var o outcome
			o.errClass = classify(s.Pages(func(p *ledger.Page) error {
				for i, tx := range p.Txs {
					if tx.Type == ledger.TxPayment && p.Metas[i].Result.Succeeded() {
						o.payments = append(o.payments, ledger.PaymentView{
							Seq: p.Header.Sequence, Time: p.Header.CloseTime, Index: i,
							Sender: tx.Account, Destination: tx.Destination,
							Currency: tx.Amount.Currency, Amount: tx.Amount.Value,
							ParallelPaths: p.Metas[i].ParallelPaths(), MaxHops: p.Metas[i].MaxHops(),
							OffersConsumed: p.Metas[i].OffersConsumed, CrossCurrency: p.Metas[i].CrossCurrency,
						})
					}
				}
				return nil
			}))
			return o
		}
		viaArena := func() outcome {
			var o outcome
			o.errClass = classify(s.PagesArena(nil, func(p *ledger.Page) error {
				for i, tx := range p.Txs {
					if tx.Type == ledger.TxPayment && p.Metas[i].Result.Succeeded() {
						o.payments = append(o.payments, ledger.PaymentView{
							Seq: p.Header.Sequence, Time: p.Header.CloseTime, Index: i,
							Sender: tx.Account, Destination: tx.Destination,
							Currency: tx.Amount.Currency, Amount: tx.Amount.Value,
							ParallelPaths: p.Metas[i].ParallelPaths(), MaxHops: p.Metas[i].MaxHops(),
							OffersConsumed: p.Metas[i].OffersConsumed, CrossCurrency: p.Metas[i].CrossCurrency,
						})
					}
				}
				return nil
			}))
			return o
		}
		viaScan := func() outcome {
			var o outcome
			o.errClass = classify(s.ScanPayments(context.Background(), 1, func(w int, pv *ledger.PaymentView) error {
				o.payments = append(o.payments, *pv)
				return nil
			}))
			return o
		}

		for _, fileRead := range []bool{false, true} {
			forceFileRead = fileRead
			ref := viaPages()
			for name, f := range map[string]func() outcome{"arena": viaArena, "scan": viaScan} {
				got := f()
				// The projection validates framing, not every field, so a
				// flip inside a skipped field may surface as a decode
				// error on the full paths only; both must still agree on
				// the payments seen before the divergence point.
				n := len(got.payments)
				if len(ref.payments) < n {
					n = len(ref.payments)
				}
				if !reflect.DeepEqual(ref.payments[:n], got.payments[:n]) {
					t.Fatalf("seed %d (fileRead=%v): %s path diverged on surviving payments", seed, fileRead, name)
				}
				if ref.errClass == "corrupted" && got.errClass != "corrupted" && name == "arena" {
					t.Fatalf("seed %d (fileRead=%v): arena path missed corruption: ref=%q got=%q",
						seed, fileRead, ref.errClass, got.errClass)
				}
				if ref.errClass == "" && got.errClass != "" {
					t.Fatalf("seed %d (fileRead=%v): %s failed where Pages succeeded: %q",
						seed, fileRead, name, got.errClass)
				}
			}
			// The full-decode paths must agree exactly, error text included.
			if got := viaArena(); got.errClass != ref.errClass || len(got.payments) != len(ref.payments) {
				t.Fatalf("seed %d (fileRead=%v): arena outcome %q/%d vs pages %q/%d",
					seed, fileRead, got.errClass, len(got.payments), ref.errClass, len(ref.payments))
			}
		}
		forceFileRead = false
	}
}

// TestSeqIndexCorruptSidecarSurfaced: a garbage sidecar must rebuild
// transparently but be reported, not silently swallowed (it used to
// be).
func TestSeqIndexCorruptSidecarSurfaced(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, 10, 1, WithSegmentBytes(1024))
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the sidecar, then corrupt it.
	if _, err := s.SegmentRanges(); err != nil {
		t.Fatal(err)
	}
	if rep := s.IndexReport(); rep.Corrupt {
		t.Fatalf("fresh sidecar reported corrupt: %+v", rep)
	}
	if err := os.WriteFile(filepath.Join(dir, SeqIndexFile), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Index.Present || !st.Index.Corrupt || st.Index.Error == "" {
		t.Fatalf("Stats did not surface corrupt sidecar: %+v", st.Index)
	}
	ranges, err := s.SegmentRanges()
	if err != nil {
		t.Fatal(err)
	}
	rep := s.IndexReport()
	if !rep.Corrupt || rep.Rebuilt != len(ranges) {
		t.Fatalf("rebuild after corrupt sidecar misreported: %+v (want Rebuilt=%d)", rep, len(ranges))
	}
	// The rewritten sidecar is healthy again.
	if _, err := s.SegmentRanges(); err != nil {
		t.Fatal(err)
	}
	if rep := s.IndexReport(); rep.Corrupt || rep.Rebuilt != 0 || !rep.Present {
		t.Fatalf("sidecar not healthy after rewrite: %+v", rep)
	}
}

// TestPagesRangeArenaMatchesPagesRange: the pooled range reader must
// deliver bit-identical pages for every sub-range.
func TestPagesRangeArenaMatchesPagesRange(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, 30, 2, WithSegmentBytes(1500))
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, rng := range [][2]uint64{{1, 30}, {7, 19}, {15, 15}, {25, 99}, {31, 40}} {
		var want []*ledger.Page
		if err := s.PagesRange(rng[0], rng[1], func(p *ledger.Page) error {
			want = append(want, p)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		i := 0
		err := s.PagesRangeArena(rng[0], rng[1], nil, func(p *ledger.Page) error {
			if i >= len(want) || !reflect.DeepEqual(want[i], p) {
				t.Fatalf("range %v: page %d differs", rng, i)
			}
			i++
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if i != len(want) {
			t.Fatalf("range %v: arena saw %d pages, want %d", rng, i, len(want))
		}
	}
}

// TestPagesRangeRecycledOwnership: the ownership-transfer range reader
// must deliver bit-identical pages, and every retained page must stay
// intact until its release is called — even after later pages in the
// scan have been decoded (each page owns its own pooled arena).
func TestPagesRangeRecycledOwnership(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, 30, 3, WithSegmentBytes(1500))
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, rng := range [][2]uint64{{1, 30}, {7, 19}, {15, 15}, {25, 99}, {31, 40}} {
		var want []ledger.Hash
		if err := s.PagesRange(rng[0], rng[1], func(p *ledger.Page) error {
			want = append(want, pageDigest(p))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		var (
			pages    []*ledger.Page
			releases []func()
		)
		err := s.PagesRangeRecycled(rng[0], rng[1], func(p *ledger.Page, release func()) error {
			pages = append(pages, p)
			releases = append(releases, release)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(pages) != len(want) {
			t.Fatalf("range %v: recycled saw %d pages, want %d", rng, len(pages), len(want))
		}
		for i, p := range pages {
			if pageDigest(p) != want[i] {
				t.Fatalf("range %v: retained page %d was clobbered before release", rng, i)
			}
		}
		for _, release := range releases {
			release()
		}
	}
	// After the releases above, a second scan runs on recycled arenas and
	// must still agree.
	var got []ledger.Hash
	err = s.PagesRangeRecycled(1, 30, func(p *ledger.Page, release func()) error {
		got = append(got, pageDigest(p))
		release()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var want []ledger.Hash
	if err := s.PagesRange(1, 30, func(p *ledger.Page) error {
		want = append(want, pageDigest(p))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("recycled rescan disagrees with PagesRange")
	}
}

// storeDigest fingerprints a store's full logical contents.
func storeDigest(t *testing.T, s *Store) ledger.Hash {
	t.Helper()
	var buf []byte
	if err := s.Pages(func(p *ledger.Page) error {
		buf = p.Encode(buf)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return ledger.SHA512Half(buf)
}

// TestExportJSONRoundTrip: the NDJSON interchange output must re-import
// to a store with an identical digest — the golden guarantee external
// tooling relies on.
func TestExportJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	writeStore(t, dir, 12, 4, WithSegmentBytes(4096))
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := s.ExportJSON(&out); err != nil {
		t.Fatal(err)
	}
	redir := filepath.Join(t.TempDir(), "reimported")
	re, err := Create(redir)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(bytes.NewReader(out.Bytes()))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	for sc.Scan() {
		var p ledger.Page
		if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
			t.Fatalf("line %d: %v", lines+1, err)
		}
		if err := re.Append(&p); err != nil {
			t.Fatal(err)
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines != 12 {
		t.Fatalf("exported %d lines, want 12", lines)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	if storeDigest(t, s) != storeDigest(t, re) {
		t.Fatal("re-imported store digest differs from original")
	}
}

// buildBenchStore writes a store shaped like the Fig. 3 feed for the
// scan benchmarks.
func buildBenchStore(b *testing.B) *Store {
	b.Helper()
	dir := b.TempDir()
	s, err := Create(dir, WithSegmentBytes(1<<15))
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	parent := ledger.Hash{}
	for i := 1; i <= benchStorePages; i++ {
		p := buildPage(uint64(i), parent, 6, r)
		parent = p.Header.Hash()
		if err := s.Append(p); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	return s
}

const benchStorePages = 240

// BenchmarkPagesParallelArena is BenchmarkPagesParallel's workload on
// the arena decode path: the delta against workers=N of the baseline is
// pure decode-garbage savings.
func BenchmarkPagesParallelArena(b *testing.B) {
	s := buildBenchStore(b)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				count := 0
				var mu sync.Mutex
				err := s.PagesParallelArena(context.Background(), workers, func(int, *ledger.Page) error {
					mu.Lock()
					count++
					mu.Unlock()
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
				if count != benchStorePages {
					b.Fatalf("scanned %d pages, want %d", count, benchStorePages)
				}
			}
			b.ReportMetric(float64(benchStorePages)*float64(b.N)/b.Elapsed().Seconds(), "pages/s")
		})
	}
}

// BenchmarkScanPayments measures the zero-copy payment projection —
// the new feed under the Fig. 3 sweep — on the mmap reader and the
// ReadFile fallback.
func BenchmarkScanPayments(b *testing.B) {
	s := buildBenchStore(b)
	const wantPayments = benchStorePages * 6
	for _, mode := range []struct {
		name     string
		fileRead bool
	}{{"mmap", false}, {"file", true}} {
		b.Run(mode.name, func(b *testing.B) {
			forceFileRead = mode.fileRead
			defer func() { forceFileRead = false }()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				count := 0
				err := s.ScanPayments(context.Background(), 1, func(int, *ledger.PaymentView) error {
					count++
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
				if count != wantPayments {
					b.Fatalf("scanned %d payments, want %d", count, wantPayments)
				}
			}
			b.ReportMetric(float64(wantPayments)*float64(b.N)/b.Elapsed().Seconds(), "payments/s")
		})
	}
}
