// Command ripple-serve is the live query-serving layer: it follows a
// validation stream (cmd/rippled-sim with -stream-pages), optionally
// backfills a ledgerstore history first, and serves the paper's
// analytics — per-validator tallies (Fig. 2), de-anonymization
// information gain and point lookups (Fig. 3 / Table I), and the
// ecosystem histograms (Figs. 4–6) — over an HTTP JSON API, answering
// from incrementally maintained materialized views instead of batch
// scans.
//
//	ripple-serve -listen 127.0.0.1:8080 -connect 127.0.0.1:5006 -period dec2015
//	ripple-serve -listen 127.0.0.1:8080 -store ./history -workers 8
//
// Endpoints: /healthz, /metrics (Prometheus text), /v1/validators,
// /v1/deanon, /v1/deanon/lookup, /v1/ecosystem. With -txq the online
// front door adds /v1/path_find (ripple_path_find-style quotes over a
// read-set-invalidated plan cache), /v1/submit (admission-controlled
// transaction queue feeding the optimistic parallel planner), and
// /v1/tx_status.
//
// SIGINT/SIGTERM shut down gracefully: the stream subscription stops,
// in-flight ingestion drains into a final epoch, the HTTP server
// finishes open requests, and the partial collection summary is
// printed — data collected before the signal is never lost.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/consensus"
	"ripplestudy/internal/ledgerstore"
	"ripplestudy/internal/netstream"
	"ripplestudy/internal/payment"
	"ripplestudy/internal/replay"
	"ripplestudy/internal/serve"
	"ripplestudy/internal/txq"
)

// txqFlags carries the front-door configuration from flag parsing to
// run.
type txqFlags struct {
	enable       bool
	depth        int
	batch        int
	backpressure bool
	cache        int
	ckptEvery    uint64
}

func main() {
	listen := flag.String("listen", "127.0.0.1:8080", "HTTP address for the query API")
	connect := flag.String("connect", "", "validation stream address to follow (optional)")
	storeDir := flag.String("store", "", "ledgerstore directory to backfill before following (optional)")
	workers := flag.Int("workers", 4, "parallel decode workers for the backfill")
	period := flag.String("period", "", "label validators from a collection period: dec2015|jul2016|nov2016")
	retries := flag.Int("retries", 8, "consecutive connection failures before giving up on the stream")
	stall := flag.Duration("stall", 30*time.Second, "reconnect if no event arrives for this long (0 = never)")
	queue := flag.Int("queue", 1024, "per-view ingest queue size, in batches")
	batch := flag.Int("batch", 64, "max updates between view snapshot publishes")
	ingestBatch := flag.Int("ingest-batch", 0, "pages per ingest fan-out batch on the backfill paths (0 = default)")
	fpShards := flag.Int("fp-shards", 0, "fingerprint count shards, rounded up to a power of two (1 = single-writer, 0 = cover GOMAXPROCS)")
	pipeWorkers := flag.Int("pipeline-workers", 0, "apply workers per view pipeline (1 = single-writer views, 0 = GOMAXPROCS)")
	drop := flag.Bool("drop", false, "shed ingest load when a view falls behind instead of applying backpressure")
	maxInflight := flag.Int("max-inflight", 64, "max concurrent HTTP queries")
	var tq txqFlags
	flag.BoolVar(&tq.enable, "txq", false, "serve the online front door: /v1/path_find quotes, /v1/submit, /v1/tx_status (engine state replayed from -store when given, empty otherwise)")
	flag.IntVar(&tq.depth, "txq-depth", 1024, "transaction queue admission bound")
	flag.IntVar(&tq.batch, "txq-batch", 256, "transactions per optimistic planning batch")
	flag.BoolVar(&tq.backpressure, "txq-backpressure", false, "make /v1/submit wait for queue space instead of shedding with 503")
	flag.IntVar(&tq.cache, "txq-cache", 4096, "path-plan quote cache entries")
	flag.Uint64Var(&tq.ckptEvery, "checkpoint-every", 0, "write state-tree checkpoints every N pages during the txq engine rebuild (0 = resume only, never write)")
	flag.Parse()

	opts := serve.Options{
		QueueSize:         *queue,
		PublishBatch:      *batch,
		IngestBatchPages:  *ingestBatch,
		FingerprintShards: *fpShards,
		PipelineWorkers:   *pipeWorkers,
		NonBlocking:       *drop,
		MaxConcurrent:     *maxInflight,
	}
	if err := run(*listen, *connect, *storeDir, *period, *workers, *retries, *stall, opts, tq); err != nil {
		fmt.Fprintln(os.Stderr, "ripple-serve:", err)
		os.Exit(1)
	}
}

// periodLabels maps a collection period's validator node IDs to their
// display labels so /v1/validators reads like the paper's Figure 2.
func periodLabels(period string) (map[addr.NodeID]string, error) {
	if period == "" {
		return nil, nil
	}
	var spec consensus.PeriodSpec
	switch period {
	case "dec2015":
		spec = consensus.December2015(0)
	case "jul2016":
		spec = consensus.July2016(0)
	case "nov2016":
		spec = consensus.November2016(0)
	default:
		return nil, fmt.Errorf("unknown period %q (want dec2015|jul2016|nov2016)", period)
	}
	labels := make(map[addr.NodeID]string)
	for _, vs := range spec.Specs {
		if vs.Label != "" {
			labels[addr.KeyPairFromSeed(vs.Seed).NodeID()] = vs.Label
		}
	}
	return labels, nil
}

func run(listen, connect, storeDir, period string, workers, retries int, stall time.Duration, opts serve.Options, tq txqFlags) error {
	labels, err := periodLabels(period)
	if err != nil {
		return err
	}
	opts.ValidatorLabels = labels
	svc := serve.NewService(opts)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	var st *ledgerstore.Store
	if storeDir != "" {
		st, err = ledgerstore.Open(storeDir)
		if err != nil {
			return err
		}
	}

	var fd *txq.FrontDoor
	if tq.enable {
		// The front door owns its own engine: replayed from the store's
		// full history when one is given, empty (accounts funded via
		// submitted history) otherwise.
		eng := payment.NewEngine()
		if st != nil {
			last, ok, serr := st.LastSeq()
			if serr != nil {
				return fmt.Errorf("txq: %w", serr)
			}
			if ok {
				// The rebuild resumes from the store's checkpoint sidecar
				// when one is present (and optionally refreshes it), so a
				// restart fast-forwards instead of replaying all history.
				start := time.Now()
				eng, serr = replay.BuildStateOpts(st, last, replay.BuildOptions{CheckpointEvery: tq.ckptEvery})
				if serr != nil {
					return fmt.Errorf("txq: rebuilding engine state: %w", serr)
				}
				fmt.Fprintf(os.Stderr, "ripple-serve: txq engine state rebuilt through seq %d in %v\n",
					last, time.Since(start).Round(time.Millisecond))
			}
		}
		fd = txq.New(eng, txq.Options{
			QueueDepth:   tq.depth,
			BatchSize:    tq.batch,
			Backpressure: tq.backpressure,
			CacheSize:    tq.cache,
		})
		svc.AttachFrontDoor(fd)
		fmt.Fprintf(os.Stderr, "ripple-serve: txq front door up (depth=%d batch=%d backpressure=%v)\n",
			tq.depth, tq.batch, tq.backpressure)
	}

	httpSrv := &http.Server{Addr: listen, Handler: svc.Handler()}
	httpErr := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "ripple-serve: serving on http://%s\n", listen)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			httpErr <- err
		}
		close(httpErr)
	}()

	if st != nil {
		start := time.Now()
		if err := svc.BackfillStore(ctx, st, workers); err != nil {
			if ctx.Err() != nil {
				// Interrupted mid-backfill: keep what was ingested.
				fmt.Fprintln(os.Stderr, "ripple-serve: backfill interrupted, keeping partial views")
			} else {
				return fmt.Errorf("backfill: %w", err)
			}
		} else {
			h := svc.Health()
			fmt.Fprintf(os.Stderr, "ripple-serve: backfilled %d pages in %v with %d workers\n",
				h.IngestedPages, time.Since(start).Round(time.Millisecond), workers)
		}
	}

	var streamStats netstream.ClientStats
	if connect != "" && ctx.Err() == nil {
		fmt.Fprintf(os.Stderr, "ripple-serve: following validation stream at %s\n", connect)
		stats, err := svc.Follow(ctx, connect, netstream.ResilientOptions{
			MaxConsecutiveFailures: retries,
			StallTimeout:           stall,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			},
		})
		streamStats = stats
		// A simulator that finishes its period and exits looks like
		// exhausted retries; everything collected so far still serves.
		if err != nil && (!errors.Is(err, netstream.ErrUnavailable) || stats.Connects == 0) {
			return err
		}
		fmt.Fprintf(os.Stderr, "ripple-serve: stream ended (events=%d reconnects=%d gaps=%d)\n",
			stats.Events, stats.Reconnects, stats.Gaps)
	}

	if connect == "" && storeDir != "" && ctx.Err() == nil {
		// Pure backfill mode: keep serving until a signal arrives.
		<-ctx.Done()
	}

	// Graceful shutdown: drain queued ingestion into a final epoch, then
	// let in-flight requests finish against it.
	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	err = svc.Drain(drainCtx)
	cancel()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ripple-serve: drain incomplete: %v\n", err)
	}
	if fd != nil {
		// Admitted transactions are applied before the door closes; the
		// HTTP server is still up, so their /v1/submit waiters resolve.
		fdCtx, fdCancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := fd.Drain(fdCtx); err != nil {
			fmt.Fprintf(os.Stderr, "ripple-serve: txq drain incomplete: %v\n", err)
		}
		fdCancel()
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "ripple-serve: http shutdown: %v\n", err)
	}
	cancel()
	if err, ok := <-httpErr; ok && err != nil {
		return err
	}
	if fd != nil {
		fd.Close()
		s := fd.StatsNow()
		fmt.Fprintf(os.Stderr, "ripple-serve: txq final: offered=%d applied=%d shed=%d cache hits=%d misses=%d\n",
			s.Offered, s.Applied, s.Shed, s.CacheHits, s.CacheMisses)
	}
	svc.Close()

	// The partial-collection summary: what the views hold at exit.
	h := svc.Health()
	fmt.Fprintf(os.Stderr, "ripple-serve: final state: events=%d pages=%d dropped=%d\n",
		h.IngestedEvents, h.IngestedPages, h.DroppedEvents)
	tally := svc.Tally()
	fp := svc.Fingerprints()
	eco := svc.Ecosystem()
	fmt.Fprintf(os.Stderr, "ripple-serve: fig2: %d rounds, %d validators (epoch %d)\n",
		tally.Rounds, len(tally.Validators), tally.Epoch)
	fmt.Fprintf(os.Stderr, "ripple-serve: fig3: %d payments fingerprinted across %d resolutions (epoch %d)\n",
		fp.Payments, len(fp.Rows), fp.Epoch)
	fmt.Fprintf(os.Stderr, "ripple-serve: fig4-6: %d payments, %d offers, %d active users (epoch %d)\n",
		eco.Payments, eco.Offers, eco.ActiveUsers, eco.Epoch)
	if streamStats.Events > 0 || connect != "" {
		fmt.Fprintf(os.Stderr, "ripple-serve: stream client: connects=%d events=%d missed=%d duplicates=%d\n",
			streamStats.Connects, streamStats.Events, streamStats.Missed, streamStats.Duplicates)
	}
	return nil
}
