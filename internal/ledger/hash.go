// Package ledger defines the Ripple distributed ledger's data model: the
// transaction types users submit, the execution metadata the payment
// engine records, and the ledger pages ("a book for recording financial
// transactions") that consensus seals. It also provides the canonical
// binary serialization and SHA-512-half hashing that identify
// transactions and pages.
package ledger

import (
	"crypto/sha512"
	"encoding/hex"
	"fmt"
)

// Hash is a 256-bit identifier: the first half of a SHA-512 digest, the
// same construction rippled uses ("SHA-512Half") for transaction IDs and
// ledger hashes.
type Hash [32]byte

// SHA512Half computes the first 32 bytes of SHA-512(data).
func SHA512Half(data []byte) Hash {
	sum := sha512.Sum512(data)
	var h Hash
	copy(h[:], sum[:32])
	return h
}

// IsZero reports whether h is the all-zero hash.
func (h Hash) IsZero() bool { return h == Hash{} }

// String renders the hash in uppercase hex, as rippled displays ledger
// hashes.
func (h Hash) String() string {
	dst := make([]byte, hex.EncodedLen(len(h)))
	hex.Encode(dst, h[:])
	for i, c := range dst {
		if c >= 'a' && c <= 'f' {
			dst[i] = c - 'a' + 'A'
		}
	}
	return string(dst)
}

// Short returns the first 8 hex characters, for logs and reports.
func (h Hash) Short() string { return h.String()[:8] }

// ParseHash parses a 64-character hex string.
func ParseHash(s string) (Hash, error) {
	if len(s) != 64 {
		return Hash{}, fmt.Errorf("ledger: hash %q: want 64 hex characters", s)
	}
	var h Hash
	if _, err := hex.Decode(h[:], []byte(s)); err != nil {
		return Hash{}, fmt.Errorf("ledger: hash %q: %w", s, err)
	}
	return h, nil
}

// MarshalText implements encoding.TextMarshaler.
func (h Hash) MarshalText() ([]byte, error) { return []byte(h.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (h *Hash) UnmarshalText(text []byte) error {
	parsed, err := ParseHash(string(text))
	if err != nil {
		return err
	}
	*h = parsed
	return nil
}
