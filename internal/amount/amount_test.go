package amount

import (
	"encoding/json"
	"testing"
)

func TestCurrencyParse(t *testing.T) {
	tests := []struct {
		in      string
		want    string
		wantErr bool
	}{
		{"USD", "USD", false},
		{"XRP", "XRP", false},
		{"", "XRP", false},
		{"CCK", "CCK", false},
		{"usd", "usd", false}, // codes are case-sensitive byte triples
		{"US", "", true},
		{"USDX", "", true},
		{"U D", "", true},
	}
	for _, tt := range tests {
		c, err := NewCurrency(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("NewCurrency(%q): err = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && c.String() != tt.want {
			t.Errorf("NewCurrency(%q) = %q, want %q", tt.in, c, tt.want)
		}
	}
}

func TestCurrencyTextRoundTrip(t *testing.T) {
	for _, c := range []Currency{XRP, USD, BTC, MTL} {
		text, err := c.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Currency
		if err := back.UnmarshalText(text); err != nil {
			t.Fatal(err)
		}
		if back != c {
			t.Errorf("round trip %s -> %s", c, back)
		}
	}
}

func TestStrengthOf(t *testing.T) {
	tests := []struct {
		c    Currency
		want Strength
	}{
		{BTC, StrengthPowerful},
		{XAU, StrengthPowerful},
		{USD, StrengthMedium},
		{EUR, StrengthMedium},
		{JPY, StrengthMedium},
		{XRP, StrengthWeak},
		{MTL, StrengthWeak},
		{KRW, StrengthWeak},
		{MustCurrency("ZZZ"), StrengthMedium}, // unlisted defaults to medium
	}
	for _, tt := range tests {
		if got := StrengthOf(tt.c); got != tt.want {
			t.Errorf("StrengthOf(%s) = %s, want %s", tt.c, got, tt.want)
		}
	}
}

func TestDropsConversions(t *testing.T) {
	tests := []struct {
		d    Drops
		want string
	}{
		{0, "0"},
		{1, "0.000001"},
		{1_500_000, "1.5"},
		{DropsPerXRP, "1"},
		{-2_500_000, "-2.5"},
	}
	for _, tt := range tests {
		if got := tt.d.String(); got != tt.want {
			t.Errorf("Drops(%d).String() = %q, want %q", tt.d, got, tt.want)
		}
		back, err := DropsFromValue(tt.d.XRPValue())
		if err != nil {
			t.Fatal(err)
		}
		if back != tt.d {
			t.Errorf("round trip Drops(%d) -> %d", tt.d, back)
		}
	}
}

func TestDropsFromValueTruncates(t *testing.T) {
	v := MustParse("0.0000015") // 1.5 drops
	d, err := DropsFromValue(v)
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Errorf("DropsFromValue(0.0000015 XRP) = %d, want 1 (truncated)", d)
	}
}

func TestDropsFromValueOverflow(t *testing.T) {
	if _, err := DropsFromValue(MustParse("1e30")); err == nil {
		t.Error("DropsFromValue(1e30 XRP): want overflow error")
	}
}

func TestAmountArithmetic(t *testing.T) {
	a := MustAmount("4.5/USD")
	b := MustAmount("0.5/USD")
	sum, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	if sum.String() != "5/USD" {
		t.Errorf("4.5/USD + 0.5/USD = %s, want 5/USD", sum)
	}
	diff, err := a.Sub(b)
	if err != nil {
		t.Fatal(err)
	}
	if diff.String() != "4/USD" {
		t.Errorf("4.5/USD - 0.5/USD = %s, want 4/USD", diff)
	}
	if _, err := a.Add(MustAmount("1/EUR")); err == nil {
		t.Error("adding USD and EUR: want error")
	}
	if _, err := a.Sub(MustAmount("1/EUR")); err == nil {
		t.Error("subtracting EUR from USD: want error")
	}
}

func TestAmountParse(t *testing.T) {
	tests := []struct {
		in      string
		want    string // expected String() when no error
		wantErr bool
	}{
		{"4.5/USD", "4.5/USD", false},
		{"100/XRP", "100/XRP", false},
		{"1e9/MTL", "1000000000/MTL", false},
		{"4.5", "", true},
		{"x/USD", "", true},
		{"4.5/TOOLONG", "", true},
	}
	for _, tt := range tests {
		a, err := ParseAmount(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseAmount(%q): err = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && a.String() != tt.want {
			t.Errorf("ParseAmount(%q).String() = %q, want %q", tt.in, a.String(), tt.want)
		}
	}
}

func TestAmountJSON(t *testing.T) {
	a := MustAmount("1234.56/EUR")
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var back Amount
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != a {
		t.Errorf("JSON round trip %s -> %s", a, back)
	}
}

func TestFormatDrops(t *testing.T) {
	tests := []struct {
		d    Drops
		want string
	}{
		{0, "0"},
		{5, "5"},
		{1234, "1,234"},
		{1234567, "1,234,567"},
		{-9876543, "-9,876,543"},
		{100, "100"},
	}
	for _, tt := range tests {
		if got := FormatDrops(tt.d); got != tt.want {
			t.Errorf("FormatDrops(%d) = %q, want %q", tt.d, got, tt.want)
		}
	}
}
