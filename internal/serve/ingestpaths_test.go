package serve

import (
	"reflect"
	"testing"

	"ripplestudy/internal/consensus"
	"ripplestudy/internal/deanon"
	"ripplestudy/internal/ledger"
)

// sampleFeatures extracts observable payment features from pages for
// lookup cross-checks.
func sampleFeatures(pages []*ledger.Page, limit int) []deanon.Features {
	var out []deanon.Features
	for _, p := range pages {
		for i := range p.Txs {
			if f, ok := deanon.FromTransaction(p, p.Txs[i], p.Metas[i]); ok {
				out = append(out, f)
				if len(out) >= limit {
					return out
				}
			}
		}
	}
	return out
}

// checkFingerprintViewsEqual asserts two services' fingerprint views
// answer identically: Figure 3 rows, payment counts, and per-feature
// lookups at every resolution.
func checkFingerprintViewsEqual(t *testing.T, a, b *Service, feats []deanon.Features) {
	t.Helper()
	fa, fb := a.Fingerprints(), b.Fingerprints()
	if fa.Payments != fb.Payments {
		t.Fatalf("payments diverge: %d != %d", fa.Payments, fb.Payments)
	}
	if !reflect.DeepEqual(fa.Rows, fb.Rows) {
		t.Fatalf("Figure 3 rows diverge:\na: %+v\nb: %+v", fa.Rows, fb.Rows)
	}
	for fi, f := range feats {
		for row := range fa.Rows {
			ca, oka := fa.Lookup(row, f)
			cb, okb := fb.Lookup(row, f)
			if oka != okb || ca != cb {
				t.Fatalf("feature %d row %d: lookup (%d,%v) != (%d,%v)", fi, row, ca, oka, cb, okb)
			}
		}
	}
}

// checkEcosystemViewsEqual asserts two services' ecosystem views carry
// identical statistics (epochs may differ — publish cadence is not part
// of the contract).
func checkEcosystemViewsEqual(t *testing.T, a, b *Service) {
	t.Helper()
	ea, eb := a.Ecosystem(), b.Ecosystem()
	if ea.Payments != eb.Payments || ea.Failed != eb.Failed || ea.MultiHop != eb.MultiHop ||
		ea.Offers != eb.Offers || ea.ActiveUsers != eb.ActiveUsers || ea.Pages != eb.Pages {
		t.Fatalf("ecosystem scalars diverge:\na: %+v\nb: %+v", ea, eb)
	}
	if !reflect.DeepEqual(ea.Currencies, eb.Currencies) ||
		!reflect.DeepEqual(ea.Hops, eb.Hops) ||
		!reflect.DeepEqual(ea.Parallel, eb.Parallel) ||
		!reflect.DeepEqual(ea.Survival, eb.Survival) {
		t.Fatal("ecosystem histograms diverge")
	}
}

// TestShardedMatchesSingleWriterService pins the sharded fingerprint
// view to the sequential single-writer baseline at the service level:
// the same pages through FingerprintShards=8 and FingerprintShards=1
// must produce bit-identical snapshots at mid-stream epochs and at the
// end — the tentpole's core differential.
func TestShardedMatchesSingleWriterService(t *testing.T) {
	pages := genPages(t, 2000, 61)
	feats := sampleFeatures(pages, 150)

	sharded := NewService(Options{FingerprintShards: 8, PublishBatch: 16})
	defer sharded.Close()
	single := NewService(Options{FingerprintShards: 1, PublishBatch: 16})
	defer single.Close()
	if got := sharded.fpState.shards(); got != 8 {
		t.Fatalf("sharded service runs %d shards, want 8", got)
	}
	if got := single.fpState.shards(); got != 1 {
		t.Fatalf("single service runs %d shards, want 1", got)
	}

	cuts := []int{len(pages) / 3, 2 * len(pages) / 3, len(pages)}
	prev := 0
	for _, cut := range cuts {
		chunk := pages[prev:cut]
		prev = cut
		if err := sharded.IngestPages(chunk); err != nil {
			t.Fatal(err)
		}
		if err := single.IngestPages(chunk); err != nil {
			t.Fatal(err)
		}
		drain(t, sharded)
		drain(t, single)
		checkFingerprintViewsEqual(t, sharded, single, feats)
		checkEcosystemViewsEqual(t, sharded, single)
	}

	// Both must also equal the batch ground truth over the full history.
	study, col := batchViews(t, pages)
	checkAgainstBatch(t, sharded, study, col, pages)
}

// TestBatchedIngestMatchesSinglePage pins the batched fan-out
// (IngestPages, one queue operation per IngestBatchPages pages) to the
// page-at-a-time path: identical views, whatever the batching.
func TestBatchedIngestMatchesSinglePage(t *testing.T) {
	pages := genPages(t, 1200, 67)
	feats := sampleFeatures(pages, 100)

	batched := NewService(Options{IngestBatchPages: 7}) // ragged final batch
	defer batched.Close()
	if err := batched.IngestPages(pages); err != nil {
		t.Fatal(err)
	}

	onebyone := NewService(Options{})
	defer onebyone.Close()
	for _, p := range pages {
		if err := onebyone.IngestPage(p); err != nil {
			t.Fatal(err)
		}
	}

	drain(t, batched)
	drain(t, onebyone)
	checkFingerprintViewsEqual(t, batched, onebyone, feats)
	checkEcosystemViewsEqual(t, batched, onebyone)
	if got, want := batched.Health().IngestedPages, uint64(len(pages)); got != want {
		t.Fatalf("batched path ingested %d pages, want %d", got, want)
	}
}

// TestDifferentialThroughInjectedFaults streams a history where well
// over 15% of the page payloads are corrupted in flight: every corrupt
// payload must be quarantined (counted, tally still advances) and the
// page views must equal the batch computation over exactly the pages
// that survived.
func TestDifferentialThroughInjectedFaults(t *testing.T) {
	pages := genPages(t, 1500, 71)
	s := NewService(Options{PublishBatch: 8})
	defer s.Close()

	var good []*ledger.Page
	corrupted := 0
	var buf []byte
	for i, p := range pages {
		buf = p.Encode(buf[:0])
		payload := append([]byte(nil), buf...)
		if i%5 < 1 { // 20% fault rate
			payload = payload[:len(payload)-1] // framing violation
			corrupted++
		} else {
			good = append(good, p)
		}
		var hash ledger.Hash
		hash[0], hash[1], hash[2] = byte(i), byte(i>>8), 1
		ev := consensus.Event{
			Kind:       consensus.EventLedgerClosed,
			LedgerHash: hash,
			Seq:        p.Header.Sequence,
			StreamSeq:  uint64(i + 1),
			PageData:   payload,
		}
		if err := s.IngestEvent(ev); err != nil {
			t.Fatal(err)
		}
	}
	drain(t, s)

	h := s.Health()
	if h.DroppedEvents != uint64(corrupted) {
		t.Fatalf("dropped %d, want %d (the corrupted payloads)", h.DroppedEvents, corrupted)
	}
	if h.IngestedPages != uint64(len(good)) {
		t.Fatalf("ingested %d pages, want %d survivors", h.IngestedPages, len(good))
	}
	if got, want := s.Tally().Rounds, len(pages); got != want {
		t.Fatalf("tally saw %d rounds, want %d — close events must survive corrupt payloads", got, want)
	}
	study, col := batchViews(t, good)
	checkAgainstBatch(t, s, study, col, good)
}
