package deanon

import (
	"testing"

	"ripplestudy/internal/amount"
	"ripplestudy/internal/ledger"
)

func windowRes() Resolution {
	return Resolution{Amount: AmountMax, Currency: true, Destination: true}
}

func TestWindowCandidatesRespectDelta(t *testing.T) {
	w := NewWindowIndex(windowRes())
	// Same (A,C,D) from three senders at t=1000, 1100, 5000.
	for i, tm := range []uint32{1000, 1100, 5000} {
		w.Add(feat(uint64(i+1), 50, amount.USD, "45", tm))
	}
	obs := feat(0, 50, amount.USD, "45", 1000)

	if got := w.Candidates(obs, 0); len(got) != 1 {
		t.Errorf("Δ=0: %d candidates, want 1", len(got))
	}
	if got := w.Candidates(obs, 150); len(got) != 2 {
		t.Errorf("Δ=150: %d candidates, want 2", len(got))
	}
	if got := w.Candidates(obs, 10_000); len(got) != 3 {
		t.Errorf("Δ=10000: %d candidates, want 3", len(got))
	}
	// A mismatched amount matches nothing at any window.
	other := feat(0, 50, amount.USD, "85", 1000)
	if got := w.Candidates(other, 10_000); len(got) != 0 {
		t.Errorf("mismatched amount returned %d candidates", len(got))
	}
}

func TestWindowDedupesSenders(t *testing.T) {
	w := NewWindowIndex(windowRes())
	for _, tm := range []uint32{1000, 1010, 1020} {
		w.Add(feat(1, 50, amount.USD, "45", tm))
	}
	if got := w.Candidates(feat(0, 50, amount.USD, "45", 1010), 60); len(got) != 1 {
		t.Errorf("repeat purchases by one sender: %d candidates, want 1", len(got))
	}
}

func TestWindowUnderflowClamp(t *testing.T) {
	w := NewWindowIndex(windowRes())
	w.Add(feat(1, 50, amount.USD, "45", 5))
	// Δ larger than the timestamp must not underflow.
	if got := w.Candidates(feat(0, 50, amount.USD, "45", 10), 100); len(got) != 1 {
		t.Errorf("clamped window lost the candidate")
	}
}

func TestUncertaintySweepMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("generates a history")
	}
	w := NewWindowIndex(windowRes())
	var payments []Features
	err := generateInto(t, func(p *ledger.Page) error {
		for i := range p.Txs {
			if f, ok := FromTransaction(p, p.Txs[i], p.Metas[i]); ok {
				w.Add(f)
				payments = append(payments, f)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	deltas := []uint32{0, 30, 300, 3600, 43_200, 86_400 * 7}
	sweep := w.UncertaintySweep(payments, deltas)
	for i, pt := range sweep {
		t.Logf("Δ=%7ds unique=%.4f", pt.DeltaSeconds, pt.UniqueRate)
		if i > 0 && pt.UniqueRate > sweep[i-1].UniqueRate+1e-9 {
			t.Errorf("uniqueness increased with uncertainty at Δ=%d", pt.DeltaSeconds)
		}
	}
	// Exact clocks de-anonymize nearly everything; a week of
	// uncertainty leaves mostly the amount/destination signal.
	if sweep[0].UniqueRate < 0.9 {
		t.Errorf("Δ=0 unique rate = %.3f, want high", sweep[0].UniqueRate)
	}
	last := sweep[len(sweep)-1]
	if last.UniqueRate >= sweep[0].UniqueRate {
		t.Error("a week of clock uncertainty should cost accuracy")
	}
}
