package ledgerstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"ripplestudy/internal/ledger"
)

// SeqIndexFile is the name of the segment sequence index sidecar kept
// next to the segment files. It maps each segment to the ledger
// sequence range it covers, so range reads (replay from a snapshot,
// LastSeq probes) open only the segments that matter instead of
// scanning the whole store.
//
// The sidecar is JSON — one entry per segment with the file's base
// name, its size in bytes when indexed, its page count, and the
// min/max header sequence it contains. An entry is trusted only if the
// segment's current size matches the recorded size; stale or missing
// entries are rebuilt by scanning just that segment, and the sidecar
// is rewritten. The store never *requires* the sidecar: deleting it
// merely costs one full rebuild scan.
const SeqIndexFile = "seqindex.json"

// SegmentRange describes one segment's coverage in the sequence index.
type SegmentRange struct {
	File   string `json:"file"`  // base name, e.g. "segment-000001.rlst"
	Bytes  int64  `json:"bytes"` // segment size when indexed (staleness check)
	Pages  int    `json:"pages"`
	MinSeq uint64 `json:"min_seq"`
	MaxSeq uint64 `json:"max_seq"`
}

type seqIndexDoc struct {
	Segments []SegmentRange `json:"segments"`
}

func loadSeqIndex(dir string) map[string]SegmentRange {
	data, err := os.ReadFile(filepath.Join(dir, SeqIndexFile))
	if err != nil {
		return nil
	}
	var doc seqIndexDoc
	if json.Unmarshal(data, &doc) != nil {
		return nil // malformed sidecar: rebuild from scratch
	}
	byFile := make(map[string]SegmentRange, len(doc.Segments))
	for _, sr := range doc.Segments {
		byFile[sr.File] = sr
	}
	return byFile
}

func saveSeqIndex(dir string, ranges []SegmentRange) {
	doc := seqIndexDoc{Segments: ranges}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return
	}
	// Best-effort: a read-only store directory just loses the cache.
	tmp := filepath.Join(dir, SeqIndexFile+".tmp")
	if os.WriteFile(tmp, data, 0o644) != nil {
		return
	}
	if os.Rename(tmp, filepath.Join(dir, SeqIndexFile)) != nil {
		os.Remove(tmp)
	}
}

// scanSegmentRange builds a segment's index entry by streaming it once.
func scanSegmentRange(path string, size int64) (SegmentRange, error) {
	sr := SegmentRange{File: filepath.Base(path), Bytes: size}
	err := streamSegment(path, func(p *ledger.Page) error {
		seq := p.Header.Sequence
		if sr.Pages == 0 {
			sr.MinSeq, sr.MaxSeq = seq, seq
		} else {
			if seq < sr.MinSeq {
				sr.MinSeq = seq
			}
			if seq > sr.MaxSeq {
				sr.MaxSeq = seq
			}
		}
		sr.Pages++
		return nil
	})
	return sr, err
}

// SegmentRanges returns the per-segment sequence coverage, in segment
// order, rebuilding any sidecar entries that are missing or stale and
// persisting the refreshed sidecar. The open segment (if any) is
// flushed first so the index reflects every appended page.
func (s *Store) SegmentRanges() ([]SegmentRange, error) {
	if err := s.closeCurrent(); err != nil {
		return nil, err
	}
	segs, err := segmentFiles(s.dir)
	if err != nil {
		return nil, err
	}
	cached := loadSeqIndex(s.dir)
	ranges := make([]SegmentRange, 0, len(segs))
	dirty := false
	for _, seg := range segs {
		info, err := os.Stat(seg)
		if err != nil {
			return nil, fmt.Errorf("ledgerstore: stat %s: %w", seg, err)
		}
		base := filepath.Base(seg)
		if sr, ok := cached[base]; ok && sr.Bytes == info.Size() {
			ranges = append(ranges, sr)
			continue
		}
		sr, err := scanSegmentRange(seg, info.Size())
		if err != nil {
			return nil, err
		}
		ranges = append(ranges, sr)
		dirty = true
	}
	if dirty || len(cached) != len(segs) {
		saveSeqIndex(s.dir, ranges)
	}
	return ranges, nil
}

// LastSeq returns the highest ledger sequence stored. ok is false for a
// store with no pages. With a warm sidecar this costs one JSON read and
// a stat per segment, not a history scan.
func (s *Store) LastSeq() (seq uint64, ok bool, err error) {
	ranges, err := s.SegmentRanges()
	if err != nil {
		return 0, false, err
	}
	for _, sr := range ranges {
		if sr.Pages == 0 {
			continue
		}
		if !ok || sr.MaxSeq > seq {
			seq, ok = sr.MaxSeq, true
		}
	}
	return seq, ok, nil
}

// errStopSegment stops the in-segment page loop early once the range's
// upper bound has been passed.
var errStopSegment = errors.New("ledgerstore: past range")

// PagesRange streams, in append order, every page whose header sequence
// lies in [lo, hi] (inclusive). Segments entirely outside the range are
// never opened — the point of the sequence index: replaying from a 70%
// snapshot touches ~30% of the store. fn's errors propagate as in
// Pages; ErrStop stops cleanly.
func (s *Store) PagesRange(lo, hi uint64, fn func(*ledger.Page) error) error {
	if hi < lo {
		return nil
	}
	ranges, err := s.SegmentRanges()
	if err != nil {
		return err
	}
	var buf []byte
	for _, sr := range ranges {
		if sr.Pages == 0 || sr.MaxSeq < lo || sr.MinSeq > hi {
			continue
		}
		path := filepath.Join(s.dir, sr.File)
		buf, err = streamSegmentBuf(path, buf, func(p *ledger.Page) error {
			seq := p.Header.Sequence
			if seq < lo {
				return nil
			}
			if seq > hi {
				// Pages append in ledger order, so nothing later in this
				// segment can be in range.
				return errStopSegment
			}
			return fn(p)
		})
		if errors.Is(err, errStopSegment) {
			return nil
		}
		if err != nil {
			return err
		}
	}
	return nil
}
