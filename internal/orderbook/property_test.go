package orderbook

import (
	"math/rand"
	"testing"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
)

// TestPropRandomOpsKeepInvariants drives random place/cancel/quote/apply
// sequences and verifies structural invariants after every operation:
// the owner index and the books agree, best-offer ordering holds, and
// consumed value respects offer quality.
func TestPropRandomOpsKeepInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	b := New()
	pair := Pair{Pays: amount.USD, Gets: amount.EUR}
	type ref struct {
		owner uint64
		seq   uint32
	}
	var standing []ref
	nextSeq := make(map[uint64]uint32)

	checkInvariants := func(step int) {
		// Owner index total equals NumOffers and book depths.
		ownerTotal := 0
		b.Owners(func(_ addr.AccountID, n int) { ownerTotal += n })
		depthTotal := 0
		b.Pairs(func(_ Pair, n int) { depthTotal += n })
		total := b.NumOffers()
		if ownerTotal != total || depthTotal != total {
			t.Fatalf("step %d: owner=%d depth=%d num=%d disagree", step, ownerTotal, depthTotal, total)
		}
		// Quote across the full depth must be sorted by quality: the
		// average unit price of a larger quote is never better than a
		// smaller one.
		q1, err1 := b.QuoteBuy(pair, amount.MustParse("10"))
		q2, err2 := b.QuoteBuy(pair, amount.MustParse("1000"))
		if err1 != nil || err2 != nil {
			t.Fatalf("step %d: quote errors %v %v", step, err1, err2)
		}
		if q1.TotalGets.IsPositive() && q2.TotalGets.IsPositive() {
			p1, e1 := q1.TotalPays.Div(q1.TotalGets)
			p2, e2 := q2.TotalPays.Div(q2.TotalGets)
			if e1 == nil && e2 == nil && p2.Cmp(p1) < 0 {
				// Allow one part in 1e12 of rounding slack.
				diff, _ := p1.Sub(p2)
				rel, err := diff.Div(p1)
				if err == nil && rel.Cmp(amount.MustValue(1, -12)) > 0 {
					t.Fatalf("step %d: larger quote has better price (%s < %s): book unsorted", step, p2, p1)
				}
			}
		}
	}

	for step := 0; step < 2000; step++ {
		switch op := r.Intn(10); {
		case op < 5: // place
			owner := uint64(1 + r.Intn(15))
			nextSeq[owner]++
			o := &Offer{
				Owner: acct(owner),
				Seq:   nextSeq[owner],
				Pays:  amount.New(amount.USD, amount.FromInt64(int64(50+r.Intn(200)))),
				Gets:  amount.New(amount.EUR, amount.FromInt64(int64(50+r.Intn(200)))),
			}
			if err := b.Place(o); err != nil {
				t.Fatalf("step %d: place: %v", step, err)
			}
			standing = append(standing, ref{owner, o.Seq})
		case op < 7: // cancel a random (possibly consumed) offer
			if len(standing) == 0 {
				continue
			}
			i := r.Intn(len(standing))
			b.Cancel(acct(standing[i].owner), standing[i].seq)
			standing = append(standing[:i], standing[i+1:]...)
		default: // quote+apply
			want := amount.FromInt64(int64(1 + r.Intn(300)))
			q, err := b.QuoteBuy(pair, want)
			if err != nil {
				t.Fatalf("step %d: quote: %v", step, err)
			}
			if err := b.Apply(q); err != nil {
				t.Fatalf("step %d: apply: %v", step, err)
			}
		}
		checkInvariants(step)
	}
}
