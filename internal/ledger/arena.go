package ledger

import (
	"fmt"

	"ripplestudy/internal/addr"
)

// PageArena is a reusable allocation arena for page decoding. A scan
// that decodes millions of pages through DecodePage pays for a fresh
// *Page, per-transaction *Tx/*TxMeta structs, and per-field byte slices
// on every record; DecodePageInto carves all of that out of the arena's
// slabs instead, so a steady-state scan allocates nothing.
//
// Contract: every DecodePageInto call resets the arena, invalidating
// the previous page decoded into it and everything reachable from it
// (transactions, metadata, signature bytes, intermediary lists). A
// consumer that needs a page beyond the next decode must deep-copy it
// first — or use DecodePage, whose output is independently allocated.
//
// A PageArena is not safe for concurrent use; parallel scans keep one
// arena per worker (see ledgerstore.PagesParallelArena).
type PageArena struct {
	page  Page
	txs   []Tx
	metas []TxMeta
	txp   []*Tx
	metap []*TxMeta
	hops  []uint8
	accts []addr.AccountID
	bytes []byte
}

// Reset recycles the arena's slabs, invalidating everything previously
// decoded into it.
func (a *PageArena) Reset() {
	a.page = Page{}
	a.txs = a.txs[:0]
	a.metas = a.metas[:0]
	a.txp = a.txp[:0]
	a.metap = a.metap[:0]
	a.hops = a.hops[:0]
	a.accts = a.accts[:0]
	a.bytes = a.bytes[:0]
}

// grabBytes copies b into the arena's byte slab and returns the stable
// copy. Slab growth relocates the backing array, but slices handed out
// before the growth keep pointing at the old (already written, still
// reachable) backing, so they stay valid until Reset.
func (a *PageArena) grabBytes(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	n := len(a.bytes)
	a.bytes = append(a.bytes, b...)
	return a.bytes[n : n+len(b) : n+len(b)]
}

// grabHops returns a stable copy of hops from the hop slab.
func (a *PageArena) grabHops(b []byte) []uint8 {
	n := len(a.hops)
	a.hops = append(a.hops, b...)
	return a.hops[n : n+len(b) : n+len(b)]
}

// grabAccounts reserves n account slots and returns the slice to fill.
func (a *PageArena) grabAccounts(n int) []addr.AccountID {
	off := len(a.accts)
	for i := 0; i < n; i++ {
		a.accts = append(a.accts, addr.AccountID{})
	}
	return a.accts[off : off+n : off+n]
}

// newTx appends a zero Tx to the slab and returns its address. Later
// slab growth copies the element; the returned pointer keeps referring
// to the old element, which holds the fully decoded value.
func (a *PageArena) newTx() *Tx {
	a.txs = append(a.txs, Tx{})
	return &a.txs[len(a.txs)-1]
}

func (a *PageArena) newMeta() *TxMeta {
	a.metas = append(a.metas, TxMeta{})
	return &a.metas[len(a.metas)-1]
}

// minTxRecordBytes is the smallest possible encoded (tx, meta) pair:
// the fixed transaction prefix plus two empty byte strings, and the
// five fixed meta fields with empty lists. It bounds how many
// transactions a page of a given byte size can actually contain, so a
// forged count can never force a large slab reservation.
const minTxRecordBytes = txFixedBytes + 2 + 2 + 1 + 14 + 1 + 4 + 1 + 2

// DecodePageInto decodes one page from data, carving every object out
// of the arena. It returns the decoded page (whose storage belongs to
// the arena) and the number of bytes consumed. The result is
// bit-identical to DecodePage on the same input; only the allocation
// strategy differs. The call resets the arena first, so the previously
// decoded page is invalidated (see the PageArena contract).
func DecodePageInto(data []byte, a *PageArena) (*Page, int, error) {
	a.Reset()
	d := decoder{buf: data}
	p := &a.page
	p.Header.Sequence = d.u64()
	p.Header.ParentHash = d.hash()
	p.Header.TxSetHash = d.hash()
	p.Header.StateHash = d.hash()
	p.Header.CloseTime = CloseTime(d.u32())
	p.Header.TotalDrops = d.u64()
	n := int(d.u32())
	if d.err != nil {
		return nil, 0, d.err
	}
	if reserve := n; reserve <= len(data)/minTxRecordBytes+1 {
		// Credible count: pre-size the slabs so no mid-page growth
		// relocations happen at all.
		if cap(a.txs) < reserve {
			a.txs = make([]Tx, 0, reserve)
		}
		if cap(a.metas) < reserve {
			a.metas = make([]TxMeta, 0, reserve)
		}
		if cap(a.txp) < reserve {
			a.txp = make([]*Tx, 0, reserve)
		}
		if cap(a.metap) < reserve {
			a.metap = make([]*TxMeta, 0, reserve)
		}
	}
	if a.txp == nil {
		// Match DecodePage's empty-but-non-nil Txs/Metas on
		// transaction-free pages (one-time cost per arena).
		a.txp = make([]*Tx, 0, 4)
		a.metap = make([]*TxMeta, 0, 4)
	}
	for i := 0; i < n; i++ {
		tx := a.newTx()
		used, err := decodeTxInto(data[d.off:], tx, a)
		if err != nil {
			return nil, 0, fmt.Errorf("ledger: page %d, tx %d: %w", p.Header.Sequence, i, err)
		}
		d.off += used
		meta := a.newMeta()
		used, err = decodeMetaInto(data[d.off:], meta, a)
		if err != nil {
			return nil, 0, fmt.Errorf("ledger: page %d, meta %d: %w", p.Header.Sequence, i, err)
		}
		d.off += used
		a.txp = append(a.txp, tx)
		a.metap = append(a.metap, meta)
	}
	p.Txs = a.txp
	p.Metas = a.metap
	return p, d.off, nil
}
