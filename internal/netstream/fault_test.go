package netstream

import (
	"bufio"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"ripplestudy/internal/consensus"
)

// TestClientSkipsBadFrames proves one corrupt line no longer kills the
// collection: the client skips it, counts it, and keeps reading.
func TestClientSkipsBadFrames(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if _, err := bufio.NewReader(conn).ReadBytes('\n'); err != nil {
			return // hello
		}
		good1, _ := encodeFrame(testEvent(1))
		good2, _ := encodeFrame(testEvent(2))
		corrupt := make([]byte, len(good2))
		copy(corrupt, good2)
		corrupt[len(corrupt)/2] ^= 0x20 // flip a bit mid-JSON: CRC must catch it
		conn.Write(good1)
		conn.Write([]byte("not a frame at all\n"))
		conn.Write(corrupt)
		conn.Write(good2)
		conn.Write(good1[:len(good1)/2]) // truncated final frame, then EOF
	}()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var got []uint64
	if err := c.Events(func(ev consensus.Event) error {
		got = append(got, ev.Seq)
		return nil
	}); err != nil {
		t.Fatalf("Events: %v", err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("events = %v, want [1 2]", got)
	}
	if bad := c.BadFrames(); bad != 3 {
		t.Errorf("BadFrames = %d, want 3 (garbage, corrupt, truncated)", bad)
	}
}

// TestStalledSubscriberDoesNotBlockPublish is the regression test for
// the global-mutex Publish: a peer that never reads must not delay
// publishes to healthy subscribers.
func TestStalledSubscriberDoesNotBlockPublish(t *testing.T) {
	s, err := Serve("127.0.0.1:0", WithQueueSize(64), WithWriteTimeout(300*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// The stalled peer: completes the handshake, then never reads.
	stalled, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()
	if _, err := stalled.Write([]byte(`{"resume_after":0}` + "\n")); err != nil {
		t.Fatal(err)
	}

	healthy, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	waitSubscribers(t, s, 2)

	var lastSeen atomic.Uint64
	go func() {
		_ = healthy.Events(func(ev consensus.Event) error {
			lastSeen.Store(ev.StreamSeq)
			return nil
		})
	}()

	const n = 20000
	events := make([]consensus.Event, n)
	for i := range events {
		events[i] = testEvent(uint64(i%50) + 1)
		events[i].StreamSeq = uint64(i) + 1
	}
	start := time.Now()
	for _, ev := range events {
		s.Publish(ev)
	}
	elapsed := time.Since(start)
	// ~6MB of frames against a peer that reads nothing: with the old
	// blocking Publish this would sit on TCP backpressure for the whole
	// socket buffer; with per-subscriber queues it is pure enqueueing.
	if elapsed > 5*time.Second {
		t.Fatalf("publishing %d events took %v with a stalled subscriber", n, elapsed)
	}

	// The healthy subscriber still receives the stream tail (drop-oldest
	// keeps the newest frames).
	deadline := time.Now().Add(10 * time.Second)
	for lastSeen.Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("healthy subscriber stuck at seq %d of %d", lastSeen.Load(), n)
		}
		time.Sleep(time.Millisecond)
	}

	// Keep publishing until the stalled peer's socket backs up into the
	// write deadline and it gets evicted; the healthy subscriber keeps
	// consuming the whole time.
	deadline = time.Now().Add(30 * time.Second)
	filler := testEvent(1)
	seq := uint64(n)
	for s.NumSubscribers() > 1 {
		if time.Now().After(deadline) {
			t.Fatal("stalled subscriber never evicted")
		}
		seq++
		filler.StreamSeq = seq
		s.Publish(filler)
	}
	if st := s.Stats(); st.Dropped == 0 {
		t.Error("expected dropped frames for the stalled subscriber")
	}
}

// TestResumeReplay checks the server's replay ring: a client that
// resumes after sequence N receives everything newer, once.
func TestResumeReplay(t *testing.T) {
	s, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := uint64(1); i <= 30; i++ {
		s.Publish(testEvent(i))
	}
	c, err := DialResume(s.Addr(), 10, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var got []uint64
	err = c.Events(func(ev consensus.Event) error {
		got = append(got, ev.StreamSeq)
		if len(got) == 20 {
			return ErrStop
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, seq := range got {
		if seq != uint64(11+i) {
			t.Fatalf("replay[%d] = seq %d, want %d (full: %v)", i, seq, 11+i, got)
		}
	}
}

// TestReplayRingBounded: resuming from before the ring's floor replays
// only what is retained.
func TestReplayRingBounded(t *testing.T) {
	s, err := Serve("127.0.0.1:0", WithReplayRing(16))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := uint64(1); i <= 40; i++ {
		s.Publish(testEvent(i))
	}
	c, err := DialResume(s.Addr(), 0, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var got []uint64
	err = c.Events(func(ev consensus.Event) error {
		got = append(got, ev.StreamSeq)
		if len(got) == 16 {
			return ErrStop
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 25 || got[len(got)-1] != 40 {
		t.Errorf("ring replayed %d..%d, want 25..40", got[0], got[len(got)-1])
	}
}
