package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// latencyRecorder keeps a sliding window of per-endpoint request
// durations and answers quantile queries on scrape. A fixed ring keeps
// the recording path O(1) and allocation-free after warm-up.
type latencyRecorder struct {
	mu      sync.Mutex
	samples []time.Duration
	next    int
	filled  bool
	count   uint64
}

func newLatencyRecorder(window int) *latencyRecorder {
	if window < 16 {
		window = 16
	}
	return &latencyRecorder{samples: make([]time.Duration, window)}
}

func (r *latencyRecorder) record(d time.Duration) {
	r.mu.Lock()
	r.samples[r.next] = d
	r.next++
	if r.next == len(r.samples) {
		r.next = 0
		r.filled = true
	}
	r.count++
	r.mu.Unlock()
}

// quantiles returns the windowed p50/p99 and the lifetime request
// count. Zero durations are returned when nothing was recorded.
func (r *latencyRecorder) quantiles() (p50, p99 time.Duration, count uint64) {
	r.mu.Lock()
	n := r.next
	if r.filled {
		n = len(r.samples)
	}
	window := make([]time.Duration, n)
	copy(window, r.samples[:n])
	count = r.count
	r.mu.Unlock()
	if n == 0 {
		return 0, 0, count
	}
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	return window[(n-1)*50/100], window[(n-1)*99/100], count
}

// endpointMetrics aggregates one endpoint's query counters.
type endpointMetrics struct {
	latency *latencyRecorder
	mu      sync.Mutex
	hits    uint64
}

// metricsSet is the registry behind /metrics: per-endpoint latency plus
// whatever gauges the service reports at scrape time.
type metricsSet struct {
	window int

	mu        sync.Mutex
	endpoints map[string]*endpointMetrics
}

func newMetricsSet(window int) *metricsSet {
	return &metricsSet{window: window, endpoints: make(map[string]*endpointMetrics)}
}

func (m *metricsSet) endpoint(name string) *endpointMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := m.endpoints[name]
	if e == nil {
		e = &endpointMetrics{latency: newLatencyRecorder(m.window)}
		m.endpoints[name] = e
	}
	return e
}

func (e *endpointMetrics) recordCacheHit() {
	e.mu.Lock()
	e.hits++
	e.mu.Unlock()
}

func (e *endpointMetrics) cacheHitCount() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.hits
}

// names returns the registered endpoint names, sorted for stable
// scrape output.
func (m *metricsSet) names() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.endpoints))
	for name := range m.endpoints {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// writeMetrics renders the service's state in Prometheus text
// exposition format.
func (s *Service) writeMetrics(w io.Writer) {
	h := s.Health()
	fmt.Fprintf(w, "# HELP serve_ingested_events_total Stream events accepted by the ingester.\n")
	fmt.Fprintf(w, "serve_ingested_events_total %d\n", h.IngestedEvents)
	fmt.Fprintf(w, "# HELP serve_ingested_pages_total Sealed ledger pages ingested (stream + backfill).\n")
	fmt.Fprintf(w, "serve_ingested_pages_total %d\n", h.IngestedPages)
	fmt.Fprintf(w, "# HELP serve_ingested_payments_total Successful payments projected at ingest; rate() gives live payments/s throughput.\n")
	fmt.Fprintf(w, "serve_ingested_payments_total %d\n", h.IngestedPayments)
	fmt.Fprintf(w, "# HELP serve_ingest_batches_total Update batches fanned out to the page views.\n")
	fmt.Fprintf(w, "serve_ingest_batches_total %d\n", s.ingestBatches.Load())
	fmt.Fprintf(w, "# HELP serve_ingest_batch_pages_total Pages carried by those batches; divide by serve_ingest_batches_total for the mean batch size.\n")
	fmt.Fprintf(w, "serve_ingest_batch_pages_total %d\n", s.ingestBatchPages.Load())
	fmt.Fprintf(w, "# HELP serve_fingerprint_shards Single-writer count shards behind the fingerprint view.\n")
	fmt.Fprintf(w, "serve_fingerprint_shards %d\n", s.fpState.shards())
	fmt.Fprintf(w, "# HELP serve_pipeline_workers Apply workers (state shards and rings) per view pipeline.\n")
	fmt.Fprintf(w, "serve_pipeline_workers %d\n", s.opts.PipelineWorkers)
	fmt.Fprintf(w, "# HELP serve_dropped_events_total Events lost: undecodable page payloads plus view-queue overflow drops.\n")
	fmt.Fprintf(w, "serve_dropped_events_total %d\n", h.DroppedEvents)
	fmt.Fprintf(w, "# HELP serve_stream_last_seq Highest stream sequence seen from the network.\n")
	fmt.Fprintf(w, "serve_stream_last_seq %d\n", h.StreamLastSeq)
	fmt.Fprintf(w, "# HELP serve_ingest_idle_seconds Time since the last ingested event.\n")
	fmt.Fprintf(w, "serve_ingest_idle_seconds %.3f\n", h.IngestIdle.Seconds())

	fmt.Fprintf(w, "# HELP serve_view_epoch Snapshot epoch of each materialized view.\n")
	for _, v := range h.Views {
		fmt.Fprintf(w, "serve_view_epoch{view=%q} %d\n", v.Name, v.Epoch)
	}
	fmt.Fprintf(w, "# HELP serve_view_applied_seq Highest ledger sequence applied to each view.\n")
	for _, v := range h.Views {
		fmt.Fprintf(w, "serve_view_applied_seq{view=%q} %d\n", v.Name, v.AppliedSeq)
	}
	fmt.Fprintf(w, "# HELP serve_view_applied_events_total Updates applied to each view.\n")
	for _, v := range h.Views {
		fmt.Fprintf(w, "serve_view_applied_events_total{view=%q} %d\n", v.Name, v.AppliedEvents)
	}
	fmt.Fprintf(w, "# HELP serve_view_ingest_lag_events Updates offered to the view but not yet applied.\n")
	for _, v := range h.Views {
		fmt.Fprintf(w, "serve_view_ingest_lag_events{view=%q} %d\n", v.Name, v.Lag)
	}
	fmt.Fprintf(w, "# HELP serve_view_dropped_events_total Updates dropped at the view inbox (non-blocking mode).\n")
	for _, v := range h.Views {
		fmt.Fprintf(w, "serve_view_dropped_events_total{view=%q} %d\n", v.Name, v.Dropped)
	}
	fmt.Fprintf(w, "# HELP serve_view_seals_total Snapshot publishes per view.\n")
	for _, vw := range s.views {
		fmt.Fprintf(w, "serve_view_seals_total{view=%q} %d\n", vw.name, vw.seals.Load())
	}
	fmt.Fprintf(w, "# HELP serve_view_last_seal_seconds Duration of each view's most recent snapshot publish (at PipelineWorkers>1, the full barrier: pause, merge, release).\n")
	for _, vw := range s.views {
		fmt.Fprintf(w, "serve_view_last_seal_seconds{view=%q} %.6f\n", vw.name, time.Duration(vw.sealNanos.Load()).Seconds())
	}
	fmt.Fprintf(w, "# HELP serve_view_last_merge_seconds Duration of each view's most recent shard merge and snapshot build alone.\n")
	for _, vw := range s.views {
		fmt.Fprintf(w, "serve_view_last_merge_seconds{view=%q} %.6f\n", vw.name, time.Duration(vw.mergeNanos.Load()).Seconds())
	}
	fmt.Fprintf(w, "# HELP serve_view_shard_queue_depth Update batches queued in each view shard's ring.\n")
	for _, vw := range s.views {
		for i, d := range vw.shardDepths() {
			fmt.Fprintf(w, "serve_view_shard_queue_depth{view=%q,shard=\"%d\"} %d\n", vw.name, i, d)
		}
	}

	fmt.Fprintf(w, "# HELP serve_http_inflight In-flight HTTP requests.\n")
	fmt.Fprintf(w, "serve_http_inflight %d\n", s.inflight.Load())
	fmt.Fprintf(w, "# HELP serve_http_rejected_total Requests shed by the admission limiter.\n")
	fmt.Fprintf(w, "serve_http_rejected_total %d\n", s.rejected.Load())

	fmt.Fprintf(w, "# HELP serve_query_total Queries served per endpoint.\n")
	fmt.Fprintf(w, "# HELP serve_query_cache_hits_total Responses served from the epoch-keyed cache.\n")
	fmt.Fprintf(w, "# HELP serve_query_latency_seconds Windowed query latency quantiles per endpoint.\n")
	for _, name := range s.metrics.names() {
		e := s.metrics.endpoint(name)
		p50, p99, count := e.latency.quantiles()
		fmt.Fprintf(w, "serve_query_total{endpoint=%q} %d\n", name, count)
		fmt.Fprintf(w, "serve_query_cache_hits_total{endpoint=%q} %d\n", name, e.cacheHitCount())
		fmt.Fprintf(w, "serve_query_latency_seconds{endpoint=%q,quantile=\"0.5\"} %.6f\n", name, p50.Seconds())
		fmt.Fprintf(w, "serve_query_latency_seconds{endpoint=%q,quantile=\"0.99\"} %.6f\n", name, p99.Seconds())
	}

	if s.fd != nil {
		s.fd.WriteMetrics(w)
	}
}
