package txq

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
	"ripplestudy/internal/ledger"
	"ripplestudy/internal/orderbook"
	"ripplestudy/internal/pathfind"
	"ripplestudy/internal/payment"
)

// Sentinel errors surfaced by Submit and PathFind.
var (
	// ErrClosed is returned once the front door is shut down.
	ErrClosed = errors.New("txq: front door closed")
	// ErrQueueFull means admission control shed the submission: the
	// queue was at depth and either Backpressure is off or the wait
	// timed out.
	ErrQueueFull = errors.New("txq: queue full")
	// ErrDuplicateSequence means the account already has a queued
	// transaction with the same explicit sequence.
	ErrDuplicateSequence = errors.New("txq: duplicate sequence for account")
	// ErrMalformed rejects a submission the queue will not accept at
	// all (nil tx, zero account, unknown type).
	ErrMalformed = errors.New("txq: malformed submission")
)

// plannedRoute is the optimistic planning output attached to a queued
// payment: the plan (nil for a certified PathDry) and the read set that
// certifies it.
type plannedRoute struct {
	plan  *pathfind.Plan
	reads pathfind.ReadSet
}

// Options configures a FrontDoor. The zero value picks serving
// defaults; see withDefaults.
type Options struct {
	// QueueDepth bounds admitted-but-unapplied transactions. Submit
	// sheds (or waits, with Backpressure) beyond it. Default 1024.
	QueueDepth int
	// BatchSize is how many queued transactions the applier drains per
	// optimistic planning batch. Default 256 (replay's planBatchSize).
	BatchSize int
	// PlanWorkers is the number of concurrent planner goroutines per
	// batch. Default GOMAXPROCS.
	PlanWorkers int
	// Backpressure makes Submit wait up to SubmitWait for queue space
	// instead of failing fast with ErrQueueFull.
	Backpressure bool
	// SubmitWait caps the backpressure wait. Default 2s.
	SubmitWait time.Duration
	// CacheSize bounds the path-plan quote cache. Default 4096 entries.
	CacheSize int
	// StatusCapacity bounds how many resolved transaction statuses are
	// retained for /v1/tx_status. Default 8192.
	StatusCapacity int
	// LatencyWindow sizes the quote / submit-to-applied latency rings.
	// Default 512 samples.
	LatencyWindow int
}

func (o Options) withDefaults() Options {
	if o.QueueDepth < 1 {
		o.QueueDepth = 1024
	}
	if o.BatchSize < 1 {
		o.BatchSize = 256
	}
	if o.PlanWorkers < 1 {
		o.PlanWorkers = runtime.GOMAXPROCS(0)
	}
	if o.SubmitWait <= 0 {
		o.SubmitWait = 2 * time.Second
	}
	if o.CacheSize < 1 {
		o.CacheSize = 4096
	}
	if o.StatusCapacity < 1 {
		o.StatusCapacity = 8192
	}
	if o.LatencyWindow < 1 {
		o.LatencyWindow = 512
	}
	return o
}

// TxStatus is the queryable outcome record for one admitted
// transaction.
type TxStatus struct {
	ID      uint64         `json:"id"`
	Hash    ledger.Hash    `json:"hash"`
	Account addr.AccountID `json:"account"`
	// Sequence is the effective sequence: 0 while an auto-sequenced
	// submission is still queued, filled in at apply time.
	Sequence uint32 `json:"sequence"`
	// State is "queued" or "applied".
	State string `json:"state"`
	// Result is the engine result code once applied.
	Result    string `json:"result,omitempty"`
	Succeeded bool   `json:"succeeded"`
	// WaitNS is the submit-to-applied latency in nanoseconds.
	WaitNS int64 `json:"wait_ns,omitempty"`
}

// txRecord pairs a status with its completion signal. subHash keeps the
// as-submitted hash resolvable after an auto-sequenced transaction's
// final hash diverges from it.
type txRecord struct {
	st      TxStatus
	subHash ledger.Hash
	done    chan struct{}
}

// Ticket is Submit's receipt: wait on Done (or Wait) for the applied
// outcome, then read it back via Status.
type Ticket struct {
	ID uint64
	// Hash is the as-submitted transaction hash. For auto-sequenced
	// submissions the as-applied hash differs (the sequence is filled
	// in); Status reports the final one.
	Hash ledger.Hash

	fd  *FrontDoor
	rec *txRecord
}

// Done is closed when the transaction has been applied.
func (t *Ticket) Done() <-chan struct{} { return t.rec.done }

// Wait blocks until the transaction is applied or ctx expires, and
// returns the final status.
func (t *Ticket) Wait(ctx context.Context) (TxStatus, error) {
	select {
	case <-t.rec.done:
		return t.fd.statusByID(t.ID)
	case <-ctx.Done():
		return TxStatus{}, ctx.Err()
	}
}

// Stats is a point-in-time snapshot of the front door's counters.
type Stats struct {
	Depth        int    `json:"depth"`
	Offered      uint64 `json:"offered"`
	Shed         uint64 `json:"shed"`
	Rejected     uint64 `json:"rejected"`
	Applied      uint64 `json:"applied"`
	Succeeded    uint64 `json:"succeeded"`
	Batches      uint64 `json:"batches"`
	PlannedAhead uint64 `json:"planned_ahead"`
	Conflicts    uint64 `json:"conflicts"`
	CacheHits    uint64 `json:"cache_hits"`
	CacheMisses  uint64 `json:"cache_misses"`
	CacheStale   uint64 `json:"cache_stale"`
	CacheEvicted uint64 `json:"cache_evicted"`
	CacheSize    int    `json:"cache_size"`
	Epoch        uint64 `json:"epoch"`
}

// FrontDoor is the online submission and quote surface over a payment
// engine. It owns the engine exclusively: quote readers share it under
// a read lock while the single applier goroutine batches queued
// transactions through the optimistic planner (plan under RLock, apply
// under Lock), exactly the replay.RunParallel protocol applied to live
// traffic instead of history.
type FrontDoor struct {
	opts Options

	// mu guards the engine (and, transitively, its graph and books).
	// The plan-cache epoch only advances inside the write-locked apply
	// section, so readers always quote against a state consistent with
	// the epoch they stamp.
	mu  sync.RWMutex
	eng *payment.Engine

	q     *queue
	slots chan struct{} // admission semaphore: one token per queued tx
	cache *planCache

	planners []*pathfind.Finder // applier-owned, run under RLock
	quoters  sync.Pool          // *pathfind.Finder for PathFind readers

	stMu     sync.Mutex
	statuses map[uint64]*txRecord
	byHash   map[ledger.Hash]uint64 // final hash → id (last wins)
	resolved []uint64               // FIFO of applied ids, for eviction
	nextID   uint64

	// Applier batch scratch (single goroutine, no lock needed).
	dirtyAcct map[addr.AccountID]struct{}
	dirtyPair map[orderbook.Pair]struct{}

	met    metrics
	wg     sync.WaitGroup
	closed atomic.Bool
}

// New wraps eng in a front door and starts the applier. The caller
// hands over the engine: touching it directly afterwards races the
// applier.
func New(eng *payment.Engine, opts Options) *FrontDoor {
	opts = opts.withDefaults()
	fd := &FrontDoor{
		opts:      opts,
		eng:       eng,
		q:         newQueue(),
		slots:     make(chan struct{}, opts.QueueDepth),
		cache:     newPlanCache(opts.CacheSize),
		statuses:  make(map[uint64]*txRecord),
		byHash:    make(map[ledger.Hash]uint64),
		dirtyAcct: make(map[addr.AccountID]struct{}),
		dirtyPair: make(map[orderbook.Pair]struct{}),
	}
	fd.met.init(opts.LatencyWindow)
	fd.planners = make([]*pathfind.Finder, opts.PlanWorkers)
	for i := range fd.planners {
		fd.planners[i] = pathfind.New(eng.Graph(), eng.Books(), pathfind.WithRecording())
	}
	fd.quoters.New = func() any {
		return pathfind.New(eng.Graph(), eng.Books(), pathfind.WithRecording())
	}
	fd.wg.Add(1)
	go fd.applyLoop()
	return fd
}

// Submit offers one transaction to the queue. A Sequence of 0 requests
// auto-sequencing: the applier fills in the account's next sequence at
// apply time (so the as-applied hash differs from the as-submitted
// one). Admission is bounded by QueueDepth — beyond it Submit sheds
// with ErrQueueFull, or waits up to SubmitWait when Backpressure is on.
func (fd *FrontDoor) Submit(tx *ledger.Tx) (*Ticket, error) {
	fd.met.offered.Add(1)
	if tx == nil || tx.Account.IsZero() || !knownType(tx.Type) {
		fd.met.rejected.Add(1)
		return nil, ErrMalformed
	}
	if fd.closed.Load() {
		fd.met.rejected.Add(1)
		return nil, ErrClosed
	}
	// Admission: one slot per queued transaction, released when the
	// applier resolves it.
	select {
	case fd.slots <- struct{}{}:
	default:
		if !fd.opts.Backpressure {
			fd.met.shed.Add(1)
			return nil, ErrQueueFull
		}
		timer := time.NewTimer(fd.opts.SubmitWait)
		select {
		case fd.slots <- struct{}{}:
			timer.Stop()
		case <-timer.C:
			fd.met.shed.Add(1)
			return nil, ErrQueueFull
		}
	}

	qt := &queuedTx{
		tx:       tx,
		fee:      effectiveFee(tx),
		autoSeq:  tx.Sequence == 0,
		enqueued: time.Now(),
	}
	rec := &txRecord{subHash: tx.Hash(), done: make(chan struct{})}
	fd.stMu.Lock()
	fd.nextID++
	qt.id = fd.nextID
	rec.st = TxStatus{
		ID:       qt.id,
		Hash:     rec.subHash,
		Account:  tx.Account,
		Sequence: tx.Sequence,
		State:    "queued",
	}
	fd.statuses[qt.id] = rec
	fd.byHash[rec.subHash] = qt.id
	fd.stMu.Unlock()

	if err := fd.q.push(qt); err != nil {
		<-fd.slots
		fd.met.rejected.Add(1)
		fd.stMu.Lock()
		if fd.byHash[rec.st.Hash] == qt.id {
			delete(fd.byHash, rec.st.Hash)
		}
		delete(fd.statuses, qt.id)
		fd.stMu.Unlock()
		return nil, err
	}
	fd.met.submitted.Add(1)
	return &Ticket{ID: qt.id, Hash: rec.subHash, fd: fd, rec: rec}, nil
}

// knownType reports whether the engine can apply the transaction type.
func knownType(t ledger.TxType) bool {
	switch t {
	case ledger.TxPayment, ledger.TxTrustSet, ledger.TxOfferCreate, ledger.TxOfferCancel:
		return true
	}
	return false
}

// effectiveFee is the fee the escalation heap orders by: the declared
// fee floored at the engine's base fee (a zero-fee submission competes
// at the minimum, it does not sort below it).
func effectiveFee(tx *ledger.Tx) amount.Drops {
	if tx.Fee < payment.BaseFee {
		return payment.BaseFee
	}
	return tx.Fee
}

// applyLoop is the single applier goroutine: drain a batch, plan it
// against the frozen engine under the read lock, apply in queue order
// under the write lock, resolve tickets. Exits when the queue is closed
// and drained.
func (fd *FrontDoor) applyLoop() {
	defer fd.wg.Done()
	for {
		batch := fd.q.popBatch(fd.opts.BatchSize)
		if batch == nil {
			return
		}
		fd.mu.RLock()
		fd.planBatch(batch)
		fd.mu.RUnlock()
		fd.mu.Lock()
		fd.applyBatch(batch)
		fd.mu.Unlock()
		fd.met.batches.Add(1)
	}
}

// planBatch mirrors replay.planBatch: fan the batch's indirect payments
// across the worker finders while the engine state is frozen. A nil
// plan with planned=true is a certified PathDry verdict; its read set
// still validates it.
func (fd *FrontDoor) planBatch(batch []*queuedTx) {
	idx := make(chan int, len(batch))
	n := 0
	for i, qt := range batch {
		if qt.tx.Type != ledger.TxPayment || isDirectXRP(qt.tx) {
			continue
		}
		idx <- i
		n++
	}
	close(idx)
	if n == 0 {
		return
	}
	workers := min(len(fd.planners), n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(f *pathfind.Finder) {
			defer wg.Done()
			for i := range idx {
				qt := batch[i]
				tx := qt.tx
				srcCur := tx.Amount.Currency
				if !tx.SendMax.IsZero() {
					srcCur = tx.SendMax.Currency
				}
				plan, err := f.FindPayment(tx.Account, tx.Destination, srcCur, tx.Amount)
				if err != nil {
					plan = nil
				}
				route := &plannedRoute{plan: plan}
				f.AppendReadSet(&route.reads)
				qt.plan = route
				qt.planned = true
			}
		}(fd.planners[w])
	}
	wg.Wait()
}

// isDirectXRP reports whether the payment is a plain XRP transfer (the
// engine never consults the pathfinder for those).
func isDirectXRP(tx *ledger.Tx) bool {
	return tx.Amount.Currency.IsXRP() && (tx.SendMax.IsZero() || tx.SendMax.Currency.IsXRP())
}

// applyBatch commits the batch in queue order under the engine write
// lock, re-planning inline whenever an earlier commit in the batch
// dirtied a plan's read set, then advances the quote-cache epoch with
// everything the batch mutated. Called with fd.mu held for writing.
func (fd *FrontDoor) applyBatch(batch []*queuedTx) {
	clear(fd.dirtyAcct)
	clear(fd.dirtyPair)
	for _, qt := range batch {
		tx := qt.tx
		if qt.autoSeq {
			clone := *tx
			clone.Sequence = fd.eng.NextSequence(tx.Account)
			tx = &clone
		}
		// OfferCancel mutates a pair we can only name before the offer
		// is gone.
		var cancelPair *orderbook.Pair
		if tx.Type == ledger.TxOfferCancel {
			if o := fd.eng.Books().Lookup(tx.Account, tx.OfferSequence); o != nil {
				p := orderbook.Pair{Pays: o.Pays.Currency, Gets: o.Gets.Currency}
				cancelPair = &p
			}
		}
		var meta *ledger.TxMeta
		var err error
		if tx.Type == ledger.TxPayment && qt.planned && fd.clean(&qt.plan.reads) {
			meta, err = fd.eng.ApplyPlanned(tx, qt.plan.plan)
			fd.met.plannedAhead.Add(1)
		} else {
			if qt.planned {
				fd.met.conflicts.Add(1)
			}
			meta, err = fd.eng.Apply(tx)
		}
		if meta != nil && meta.Result.Succeeded() {
			switch tx.Type {
			case ledger.TxPayment:
				fd.markExecuted()
			case ledger.TxTrustSet:
				fd.dirtyAcct[tx.Account] = struct{}{}
				fd.dirtyAcct[tx.LimitPeer] = struct{}{}
			case ledger.TxOfferCreate:
				fd.dirtyPair[orderbook.Pair{
					Pays: tx.TakerPays.Currency,
					Gets: tx.TakerGets.Currency,
				}] = struct{}{}
			case ledger.TxOfferCancel:
				if cancelPair != nil {
					fd.dirtyPair[*cancelPair] = struct{}{}
				}
			}
		}
		fd.resolve(qt, tx, meta, err)
	}
	// Inside the write-locked section: no reader can compute a quote
	// against the superseded state after this epoch advance.
	fd.cache.invalidate(fd.dirtyAcct, fd.dirtyPair)
}

// clean reports whether nothing in the read set has been dirtied by an
// earlier commit in this batch (replay.applier.clean).
func (fd *FrontDoor) clean(rs *pathfind.ReadSet) bool {
	if len(fd.dirtyAcct) > 0 {
		for _, a := range rs.Accounts {
			if _, dirty := fd.dirtyAcct[a]; dirty {
				return false
			}
		}
	}
	if len(fd.dirtyPair) > 0 {
		for _, p := range rs.Pairs {
			if _, dirty := fd.dirtyPair[p]; dirty {
				return false
			}
		}
	}
	return true
}

// markExecuted records the state the just-committed payment mutated
// (replay.applier.markExecuted).
func (fd *FrontDoor) markExecuted() {
	plan := fd.eng.ExecutedPlan()
	if plan == nil {
		return
	}
	for _, fl := range plan.TrustFlows {
		fd.dirtyAcct[fl.From] = struct{}{}
		fd.dirtyAcct[fl.To] = struct{}{}
	}
	for _, q := range plan.Quotes {
		fd.dirtyPair[q.Pair] = struct{}{}
	}
}

// resolve finalizes one transaction's status, signals its waiter, and
// releases its admission slot.
func (fd *FrontDoor) resolve(qt *queuedTx, applied *ledger.Tx, meta *ledger.TxMeta, err error) {
	wait := time.Since(qt.enqueued)
	result := "internal error"
	succeeded := false
	if err == nil && meta != nil {
		result = meta.Result.String()
		succeeded = meta.Result.Succeeded()
	} else if err != nil {
		result = fmt.Sprintf("internal error: %v", err)
	}
	finalHash := applied.Hash()

	fd.stMu.Lock()
	rec := fd.statuses[qt.id]
	if rec != nil {
		rec.st.State = "applied"
		rec.st.Hash = finalHash
		rec.st.Sequence = applied.Sequence
		rec.st.Result = result
		rec.st.Succeeded = succeeded
		rec.st.WaitNS = wait.Nanoseconds()
		// Both the as-submitted and as-applied hashes resolve; clients
		// hold the former until they read the status back.
		if finalHash != rec.subHash {
			fd.byHash[finalHash] = qt.id
		}
		fd.resolved = append(fd.resolved, qt.id)
		for len(fd.resolved) > fd.opts.StatusCapacity {
			old := fd.resolved[0]
			fd.resolved = fd.resolved[1:]
			if gone, ok := fd.statuses[old]; ok {
				if fd.byHash[gone.st.Hash] == old {
					delete(fd.byHash, gone.st.Hash)
				}
				if fd.byHash[gone.subHash] == old {
					delete(fd.byHash, gone.subHash)
				}
				delete(fd.statuses, old)
			}
		}
	}
	fd.stMu.Unlock()
	if rec != nil {
		close(rec.done)
	}
	<-fd.slots
	fd.met.applied.Add(1)
	if succeeded {
		fd.met.succeeded.Add(1)
	}
	fd.met.submitLat.record(wait)
}

// PathFind answers a ripple_path_find-style quote: the best liquidity
// for delivering `deliver` to dst funded in srcCur from src. Answers
// come from the read-set-invalidated cache when valid, otherwise from a
// fresh recording search against the live engine under the read lock.
func (fd *FrontDoor) PathFind(src, dst addr.AccountID, srcCur amount.Currency, deliver amount.Amount) (Quote, error) {
	start := time.Now()
	defer func() { fd.met.quoteLat.record(time.Since(start)) }()
	if fd.closed.Load() {
		return Quote{}, ErrClosed
	}
	if srcCur.IsXRP() && deliver.Currency.IsXRP() {
		// Direct XRP transfers need no path; mirror the engine, which
		// never consults the finder for them.
		return Quote{
			Found:       true,
			Delivered:   deliver.Value,
			SourceCost:  deliver.Value,
			SrcCurrency: srcCur,
			DstCurrency: deliver.Currency,
			Epoch:       fd.cache.currentEpoch(),
		}, nil
	}
	key := quoteKey{src: src, dst: dst, srcCur: srcCur, dstCur: deliver.Currency, deliver: deliver.Value}
	if q, ok := fd.cache.get(key); ok {
		return q, nil
	}

	fd.mu.RLock()
	f := fd.quoters.Get().(*pathfind.Finder)
	plan, err := f.FindPayment(src, dst, srcCur, deliver)
	var reads pathfind.ReadSet
	f.AppendReadSet(&reads)
	fd.quoters.Put(f)
	epoch := fd.cache.currentEpoch()
	fd.mu.RUnlock()

	if err != nil && !errors.Is(err, pathfind.ErrNoPath) {
		return Quote{}, err
	}
	q := Quote{
		SrcCurrency: srcCur,
		DstCurrency: deliver.Currency,
		Epoch:       epoch,
	}
	if err == nil && plan != nil {
		q.Found = true
		q.Delivered = plan.Delivered
		q.SourceCost = plan.SourceCost
		q.Paths = append([]pathfind.PathInfo(nil), plan.Paths...)
		q.UsedBridge = plan.UsedBridge
	}
	fd.cache.put(key, q, reads)
	return q, nil
}

// Status looks up a transaction by its as-submitted or as-applied hash.
func (fd *FrontDoor) Status(h ledger.Hash) (TxStatus, bool) {
	fd.stMu.Lock()
	defer fd.stMu.Unlock()
	id, ok := fd.byHash[h]
	if !ok {
		return TxStatus{}, false
	}
	rec := fd.statuses[id]
	if rec == nil {
		return TxStatus{}, false
	}
	return rec.st, true
}

func (fd *FrontDoor) statusByID(id uint64) (TxStatus, error) {
	fd.stMu.Lock()
	defer fd.stMu.Unlock()
	rec := fd.statuses[id]
	if rec == nil {
		return TxStatus{}, errors.New("txq: status evicted")
	}
	return rec.st, nil
}

// Depth returns the current queued-but-unresolved count (admission
// slots held).
func (fd *FrontDoor) Depth() int { return len(fd.slots) }

// Epoch returns the current trust-graph epoch.
func (fd *FrontDoor) Epoch() uint64 { return fd.cache.currentEpoch() }

// StateDigest returns the engine's running state digest under the read
// lock — with the queue drained it is directly comparable to a
// sequential replay of the same transactions.
func (fd *FrontDoor) StateDigest() ledger.Hash {
	fd.mu.RLock()
	defer fd.mu.RUnlock()
	return fd.eng.StateDigest()
}

// WithEngine runs fn with the engine under the read lock. Serving
// handlers use it for read-only account probes (existence, next
// sequence) without racing the applier.
func (fd *FrontDoor) WithEngine(fn func(eng *payment.Engine)) {
	fd.mu.RLock()
	defer fd.mu.RUnlock()
	fn(fd.eng)
}

// Drain waits until every admitted transaction has resolved or ctx
// expires.
func (fd *FrontDoor) Drain(ctx context.Context) error {
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		if fd.q.size() == 0 && len(fd.slots) == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// Close shuts the front door: new submissions fail with ErrClosed,
// already-admitted transactions are applied and resolved, then the
// applier exits.
func (fd *FrontDoor) Close() {
	if fd.closed.Swap(true) {
		return
	}
	fd.q.close()
	fd.wg.Wait()
}

// StatsNow snapshots the counters.
func (fd *FrontDoor) StatsNow() Stats {
	hits, misses, stale, evicted, size := fd.cache.statsNow()
	return Stats{
		Depth:        fd.Depth(),
		Offered:      fd.met.offered.Load(),
		Shed:         fd.met.shed.Load(),
		Rejected:     fd.met.rejected.Load(),
		Applied:      fd.met.applied.Load(),
		Succeeded:    fd.met.succeeded.Load(),
		Batches:      fd.met.batches.Load(),
		PlannedAhead: fd.met.plannedAhead.Load(),
		Conflicts:    fd.met.conflicts.Load(),
		CacheHits:    hits,
		CacheMisses:  misses,
		CacheStale:   stale,
		CacheEvicted: evicted,
		CacheSize:    size,
		Epoch:        fd.cache.currentEpoch(),
	}
}
