// Robustness: the paper's §IV concerns, interactive. How many validators
// does Ripple's safety actually rest on? What happens when an attacker
// takes the top ones down? How much UNL overlap prevents forks, and
// would a reward system grow the validator population?
//
//	go run ./examples/robustness
package main

import (
	"fmt"
	"log"

	"ripplestudy/internal/consensus"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. The takedown: December 2015's population, attacked mid-period.
	fmt.Println("1. Taking down trusted validators (December 2015 population)")
	fmt.Println("   The downed machines stay on everyone's UNL, so they still")
	fmt.Println("   count against the 80% validation quorum.")
	for _, k := range []int{0, 1, 2} {
		net := consensus.NewNetwork(consensus.Config{Seed: 7}, consensus.December2015(0).Specs)
		warmup(net, 100)
		net.DisableTopActives(k)
		fmt.Printf("   %d taken down -> %.0f%% of rounds validate\n", k, 100*validatedRate(net, 200))
	}

	// 2. UNL overlap: how much shared trust prevents forks.
	fmt.Println("\n2. UNL overlap vs forks (two validator groups, 80% quorum)")
	for _, o := range []float64{0.2, 0.4, 0.6} {
		res := consensus.SimulateUNLOverlap(consensus.OverlapConfig{
			GroupSize: 30, Overlap: o, Rounds: 10_000, Seed: 11,
		})
		fmt.Printf("   %.0f%% overlap -> forks in %.1f%% of split rounds (feasible: %v)\n",
			100*o, 100*res.ForkRate, res.ForkPossible)
	}
	fmt.Println("   forks are impossible above 2×(1−quorum) = 40% overlap.")

	// 3. The paper's proposed fix: a transaction tax funding validators.
	fmt.Println("\n3. A reward system (the paper's §IV proposal)")
	for _, tax := range []float64{0, 0.2, 1.0} {
		series := consensus.SimulateIncentives(consensus.IncentiveConfig{
			TaxPerRound: tax, RoundsPerEpoch: 100_000, OperatingCost: 1000,
			InitialValidators: 13, Epochs: 100,
		})
		last := series[len(series)-1]
		fmt.Printf("   tax %.1f/round -> %3d validators, tolerating %d losses\n",
			tax, last.Validators, last.FaultTolerance)
	}
	fmt.Println("\nWith fees destroyed (Ripple today), only subsidized validators remain —")
	fmt.Println("the small, fragile set the paper measured.")
	return nil
}

func warmup(net *consensus.Network, rounds int) {
	for i := 0; i < rounds; i++ {
		if _, err := net.RunRound(nil); err != nil {
			return
		}
	}
}

func validatedRate(net *consensus.Network, rounds int) float64 {
	ok := 0
	for i := 0; i < rounds; i++ {
		res, err := net.RunRound(nil)
		if err != nil {
			return 0
		}
		if res.Validated {
			ok++
		}
	}
	return float64(ok) / float64(rounds)
}
