package deanon

import (
	"encoding/binary"

	"ripplestudy/internal/amount"
)

// The hot path of the §V study hashes every payment under every
// resolution tuple — 10 fingerprints per payment, 230M fingerprints at
// the paper's 23M-payment scale. The generic FingerprintOf used to build
// a fresh hash.Hash per call; at that scale the allocations dominated.
// This file is the allocation-free fast path: FNV-1a is inlined over
// stack buffers, and FeatureEnc precomputes every feature's byte
// encoding (all Table I rounding levels, all time granularities) once
// per payment so that a study over k resolutions performs the rounding
// and serialization work 1×, not k×. Both paths are bit-identical to
// hashing the same byte sequence with hash/fnv's New64a.

// FNV-1a 64-bit parameters (FNV-0 offset basis hashed over
// "chongo <Landon Curt Noll> /\\../\\", and the 64-bit FNV prime).
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// fnvBytes folds b into the running FNV-1a state h.
func fnvBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime64
	}
	return h
}

// Feature-chunk sizes: each chunk carries its domain-separation tag
// ('A', 'T', 'C', 'D') followed by the fixed-width feature encoding.
const (
	amtChunkLen  = 1 + 16 // 'A' ∥ mantissa ∥ exponent<<1|sign
	timeChunkLen = 1 + 8  // 'T' ∥ coarsened close time
	curChunkLen  = 1 + 3  // 'C' ∥ currency code
	dstChunkLen  = 1 + 20 // 'D' ∥ destination account
)

// encodeAmount serializes a rounded amount value into an 'A' chunk.
func encodeAmount(dst *[amtChunkLen]byte, v amount.Value) {
	dst[0] = 'A'
	m := v.Mantissa()
	e := uint64(int64(v.Exponent()))
	s := uint64(0)
	if v.IsNegative() {
		s = 1
	}
	binary.BigEndian.PutUint64(dst[1:9], m)
	binary.BigEndian.PutUint64(dst[9:17], e<<1|s)
}

// FeatureEnc is a payment's features pre-encoded at every resolution
// level: three Table I rounding levels plus the exact amount, and the
// four time granularities. Building one costs three roundings and four
// truncations; every subsequent Fingerprint call is a pure FNV pass
// over the precomputed chunks, with no allocation and no re-rounding.
type FeatureEnc struct {
	// amt[r-1] is the chunk for AmountRes r (Max, Avg, Low, Exact).
	amt [4][amtChunkLen]byte
	// tim[r-1] is the chunk for TimeRes r (Seconds … Days).
	tim [4][timeChunkLen]byte
	cur [curChunkLen]byte
	dst [dstChunkLen]byte
}

// EncodeFeatures precomputes f's fingerprint chunks at every level.
func EncodeFeatures(f Features) FeatureEnc {
	var e FeatureEnc
	EncodeFeaturesTo(&e, &f)
	return e
}

// EncodeFeaturesTo is EncodeFeatures writing into a caller-owned
// FeatureEnc — hot projection loops use it to avoid copying the
// ~130-byte struct through a return value once per payment.
func EncodeFeaturesTo(e *FeatureEnc, f *Features) {
	// One strength lookup covers all three Table I levels: Avg and Low
	// round one and two decades coarser than Max by definition, so the
	// per-level RoundAmount calls (three currency-strength map probes)
	// collapse into a single base-exponent derivation.
	base := tableIBase(amount.StrengthOf(f.Currency))
	encodeAmount(&e.amt[AmountMax-1], f.Amount.RoundToPow10(base))
	encodeAmount(&e.amt[AmountAvg-1], f.Amount.RoundToPow10(base+1))
	encodeAmount(&e.amt[AmountLow-1], f.Amount.RoundToPow10(base+2))
	encodeAmount(&e.amt[AmountExact-1], f.Amount)
	for res := TimeSeconds; res <= TimeDays; res++ {
		e.tim[res-1][0] = 'T'
		binary.BigEndian.PutUint64(e.tim[res-1][1:9], uint64(CoarsenTime(f.Time, res)))
	}
	e.cur[0] = 'C'
	copy(e.cur[1:], f.Currency[:])
	e.dst[0] = 'D'
	copy(e.dst[1:], f.Destination[:])
}

// Fingerprint combines the precomputed chunks selected by res into the
// payment's fingerprint. The result is identical to FingerprintOf on
// the original features.
func (e *FeatureEnc) Fingerprint(res Resolution) Fingerprint {
	h := fnvOffset64
	if res.Amount != AmountOff {
		h = fnvBytes(h, e.amt[res.Amount-1][:])
	}
	if res.Time != TimeOff {
		h = fnvBytes(h, e.tim[res.Time-1][:])
	}
	if res.Currency {
		h = fnvBytes(h, e.cur[:])
	}
	if res.Destination {
		h = fnvBytes(h, e.dst[:])
	}
	return Fingerprint(h)
}

// FingerprintPlan is a compiled resolution list for AppendFingerprints.
// Building the plan once per study (instead of re-deriving per payment)
// lets the hot loop exploit two structural facts about real resolution
// sets like Figure3Rows:
//
//   - Rows share (amount, time) hash prefixes — Figure 3's ten rows have
//     only seven distinct prefixes — so the prefix FNV state is computed
//     once per distinct prefix and memoized.
//   - Most rows end with the 21-byte destination chunk. FNV-1a is a
//     serial multiply chain, so folding it row-by-row pays the full
//     multiply latency 21×k times; folding it lane-interleaved across k
//     independent row states pipelines the multiplies and costs close to
//     one chain.
type FingerprintPlan struct {
	rows []planRow
	// curRows / dstRows index the rows whose resolution selects the
	// currency / destination feature, in row order.
	curRows []int32
	dstRows []int32
	// amtLevels lists the distinct nonzero amount levels the rows use;
	// the amount stage folds each level's chunk exactly once,
	// lane-interleaved. pairs lists the distinct (amount level, time
	// level) prefixes, each continuing from its amount lane (-1 = amount
	// off); rowPair maps every row to its prefix pair.
	amtLevels []int8
	pairs     []planPair
	rowPair   []int32
}

type planRow struct {
	amt int8 // AmountRes (0 = off)
	tim int8 // TimeRes (0 = off)
	cur bool
}

type planPair struct {
	amtLane int8 // index into amtLevels, -1 = amount off
	tim     int8 // TimeRes (0 = off)
}

// NewFingerprintPlan compiles a resolution list. The plan is immutable
// and safe for concurrent use by any number of goroutines.
func NewFingerprintPlan(resolutions []Resolution) *FingerprintPlan {
	p := &FingerprintPlan{
		rows:    make([]planRow, len(resolutions)),
		rowPair: make([]int32, len(resolutions)),
	}
	for i, r := range resolutions {
		p.rows[i] = planRow{amt: int8(r.Amount), tim: int8(r.Time), cur: r.Currency}
		if r.Currency {
			p.curRows = append(p.curRows, int32(i))
		}
		if r.Destination {
			p.dstRows = append(p.dstRows, int32(i))
		}
		lane := int8(-1)
		if r.Amount != AmountOff {
			lane = int8(len(p.amtLevels))
			for j, lvl := range p.amtLevels {
				if lvl == int8(r.Amount) {
					lane = int8(j)
					break
				}
			}
			if lane == int8(len(p.amtLevels)) {
				p.amtLevels = append(p.amtLevels, int8(r.Amount))
			}
		}
		pair := planPair{amtLane: lane, tim: int8(r.Time)}
		idx := int32(len(p.pairs))
		for j, pr := range p.pairs {
			if pr == pair {
				idx = int32(j)
				break
			}
		}
		if idx == int32(len(p.pairs)) {
			p.pairs = append(p.pairs, pair)
		}
		p.rowPair[i] = idx
	}
	return p
}

// Rows returns the number of resolutions the plan fingerprints.
func (p *FingerprintPlan) Rows() int { return len(p.rows) }

// dstLanes is how many row states the destination fold interleaves at
// once: 16 lanes of running FNV state is 128 B, two cache lines.
const dstLanes = 16

// AppendFingerprints appends one fingerprint per plan row to out and
// returns the extended slice. Each appended value is bit-identical to
// e.Fingerprint (and FingerprintOf) for the corresponding resolution —
// the plan only reorders work, never the per-row byte sequence.
//
// Every stage is lane-interleaved: FNV-1a is a serial multiply chain, so
// folding chunks row-by-row pays the full multiply latency per row,
// while folding one byte position across many independent row states
// pipelines the multiplies and costs close to a single chain.
func (e *FeatureEnc) AppendFingerprints(p *FingerprintPlan, out []Fingerprint) []Fingerprint {
	// Amount stage: fold each distinct amount chunk once, all levels in
	// parallel lanes (Figure 3 uses at most 4).
	var amtSt [4]uint64
	nA := len(p.amtLevels)
	for j := 0; j < nA; j++ {
		amtSt[j] = fnvOffset64
	}
	for b := 0; b < amtChunkLen; b++ {
		for j := 0; j < nA; j++ {
			amtSt[j] = (amtSt[j] ^ uint64(e.amt[p.amtLevels[j]-1][b])) * fnvPrime64
		}
	}
	// Pair stage: continue each distinct (amount, time) prefix with its
	// time chunk, interleaved across pairs (at most 25 exist).
	var pairSt [25]uint64
	for k, pr := range p.pairs {
		if pr.amtLane >= 0 {
			pairSt[k] = amtSt[pr.amtLane]
		} else {
			pairSt[k] = fnvOffset64
		}
	}
	for b := 0; b < timeChunkLen; b++ {
		for k, pr := range p.pairs {
			if pr.tim != 0 {
				pairSt[k] = (pairSt[k] ^ uint64(e.tim[pr.tim-1][b])) * fnvPrime64
			}
		}
	}
	start := len(out)
	for i := range p.rows {
		out = append(out, Fingerprint(pairSt[p.rowPair[i]]))
	}
	rows := out[start:]
	// Currency and destination stages: fold the shared chunk across the
	// selecting rows' states, up to dstLanes at a time.
	foldLanes(rows, p.curRows, e.cur[:])
	foldLanes(rows, p.dstRows, e.dst[:])
	return out
}

// foldLanes folds chunk into rows[idx] for every idx in sel,
// interleaving up to dstLanes independent FNV states.
func foldLanes(rows []Fingerprint, sel []int32, chunk []byte) {
	for lo := 0; lo < len(sel); lo += dstLanes {
		batch := sel[lo:]
		if len(batch) > dstLanes {
			batch = batch[:dstLanes]
		}
		var st [dstLanes]uint64
		n := len(batch)
		for j, ri := range batch {
			st[j] = uint64(rows[ri])
		}
		for _, c := range chunk {
			x := uint64(c)
			for j := 0; j < n; j++ {
				st[j] = (st[j] ^ x) * fnvPrime64
			}
		}
		for j, ri := range batch {
			rows[ri] = Fingerprint(st[j])
		}
	}
}
