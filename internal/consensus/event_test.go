package consensus

import (
	"encoding/json"
	"testing"
	"time"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/ledger"
)

func TestEventJSONRoundTrip(t *testing.T) {
	kp := addr.KeyPairFromSeed(5)
	h := ledger.SHA512Half([]byte("page"))
	ev := Event{
		Kind:       EventValidation,
		Seq:        42,
		LedgerHash: h,
		Node:       kp.NodeID(),
		Signature:  kp.Sign(h[:]),
		Time:       time.Date(2015, 12, 3, 10, 0, 5, 0, time.UTC),
	}
	data, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	var back Event
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Kind != ev.Kind || back.Seq != ev.Seq || back.LedgerHash != ev.LedgerHash ||
		back.Node != ev.Node || !back.Time.Equal(ev.Time) {
		t.Errorf("round trip mangled event:\n%+v\n%+v", ev, back)
	}
	if !addr.Verify(back.Node.PublicKey(), back.LedgerHash[:], back.Signature) {
		t.Error("signature broken by JSON round trip")
	}
}

func TestBehaviorString(t *testing.T) {
	tests := map[Behavior]string{
		BehaviorActive:  "active",
		BehaviorLaggard: "laggard",
		BehaviorForked:  "forked",
		BehaviorTestnet: "testnet",
	}
	for b, want := range tests {
		if b.String() != want {
			t.Errorf("%d.String() = %q, want %q", b, b.String(), want)
		}
	}
	if Behavior(77).String() == "" {
		t.Error("unknown behavior should still render")
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.ValidationQuorum != 0.8 {
		t.Errorf("quorum = %v, want 0.8", cfg.ValidationQuorum)
	}
	if len(cfg.Thresholds) == 0 || cfg.Thresholds[0] != 0.5 {
		t.Errorf("thresholds = %v, want rising from 0.5", cfg.Thresholds)
	}
	if cfg.CloseInterval != 5*time.Second {
		t.Errorf("close interval = %v, want 5s", cfg.CloseInterval)
	}
}

func TestValidatorDisplayName(t *testing.T) {
	labelled := newValidator(ValidatorSpec{Label: "bitstamp.net", Seed: 1})
	if labelled.DisplayName() != "bitstamp.net" {
		t.Errorf("labelled name = %q", labelled.DisplayName())
	}
	anon := newValidator(ValidatorSpec{Seed: 2})
	if anon.DisplayName() == "" || anon.DisplayName()[0] != 'n' {
		t.Errorf("anonymous name = %q, want truncated node key", anon.DisplayName())
	}
}
