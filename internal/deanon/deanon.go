// Package deanon implements the paper's transaction de-anonymization
// study (§V): given side-channel knowledge of a single payment — its
// amount A, timestamp T, currency C, and destination D, each possibly
// coarsened to a lower resolution — how often does that observation form
// a unique fingerprint across the whole ledger history, revealing the
// sender S?
//
// The package provides the Table I rounding process, fingerprint
// construction, the information-gain (IG) computation of Figure 3, and
// the attacker-side query API behind the paper's latte example.
package deanon

import (
	"encoding/binary"
	"fmt"
	"sort"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
	"ripplestudy/internal/ledger"
)

// AmountRes is the resolution of the amount feature. The paper defines
// three rounding levels per currency-strength group (Table I); Off drops
// the feature entirely.
type AmountRes int

const (
	// AmountOff excludes the amount from the fingerprint.
	AmountOff AmountRes = iota
	// AmountMax rounds to the finest Table I level (e.g. closest ten for
	// USD, closest thousandth for BTC).
	AmountMax
	// AmountAvg rounds one decade coarser than AmountMax.
	AmountAvg
	// AmountLow rounds two decades coarser than AmountMax.
	AmountLow
	// AmountExact keeps the ledger's full precision. Figure 3 never uses
	// it (the paper's "maximum" is already rounded); the attacker API
	// accepts it for exact-knowledge scenarios.
	AmountExact
)

// String implements fmt.Stringer using the paper's subscripts.
func (a AmountRes) String() string {
	switch a {
	case AmountOff:
		return "-"
	case AmountMax:
		return "Am"
	case AmountAvg:
		return "Aa"
	case AmountLow:
		return "Al"
	case AmountExact:
		return "Aexact"
	default:
		return fmt.Sprintf("AmountRes(%d)", int(a))
	}
}

// TimeRes is the resolution of the timestamp feature: seconds, minutes,
// hours, or days, or Off.
type TimeRes int

const (
	// TimeOff excludes the timestamp.
	TimeOff TimeRes = iota
	// TimeSeconds keeps the ledger's second-level close time.
	TimeSeconds
	// TimeMinutes truncates to the minute.
	TimeMinutes
	// TimeHours truncates to the hour.
	TimeHours
	// TimeDays truncates to the day.
	TimeDays
)

// String implements fmt.Stringer using the paper's subscripts.
func (t TimeRes) String() string {
	switch t {
	case TimeOff:
		return "-"
	case TimeSeconds:
		return "Tsc"
	case TimeMinutes:
		return "Tmn"
	case TimeHours:
		return "Thr"
	case TimeDays:
		return "Tdy"
	default:
		return fmt.Sprintf("TimeRes(%d)", int(t))
	}
}

// Resolution is one row of Figure 3: which features enter the
// fingerprint and how coarsely.
type Resolution struct {
	Amount      AmountRes
	Time        TimeRes
	Currency    bool
	Destination bool
}

// String renders the paper's ⟨A;T;C;D⟩ notation.
func (r Resolution) String() string {
	c, d := "-", "-"
	if r.Currency {
		c = "C"
	}
	if r.Destination {
		d = "D"
	}
	return fmt.Sprintf("<%s;%s;%s;%s>", r.Amount, r.Time, c, d)
}

// tableIBase returns the AmountMax rounding exponent for a strength
// group, per Table I: powerful 10^-3, medium 10^1, weak 10^5.
func tableIBase(s amount.Strength) int {
	switch s {
	case amount.StrengthPowerful:
		return -3
	case amount.StrengthMedium:
		return 1
	default:
		return 5
	}
}

// RoundExponent returns the 10^x rounding exponent Table I prescribes
// for the currency at the given resolution.
func RoundExponent(c amount.Currency, res AmountRes) (int, bool) {
	base := tableIBase(amount.StrengthOf(c))
	switch res {
	case AmountMax:
		return base, true
	case AmountAvg:
		return base + 1, true
	case AmountLow:
		return base + 2, true
	default:
		return 0, false
	}
}

// RoundAmount applies the Table I rounding process: "a given resolution
// level rounds the original value to the corresponding closest 10^x
// value."
func RoundAmount(v amount.Value, c amount.Currency, res AmountRes) amount.Value {
	exp, ok := RoundExponent(c, res)
	if !ok {
		return v // AmountExact (or Off, whose value is unused)
	}
	return v.RoundToPow10(exp)
}

// CoarsenTime truncates a close time to the resolution's granularity,
// e.g. "2015-08-24 15:41:03" becomes "2015-08-24 00:00:00" at day level.
func CoarsenTime(t ledger.CloseTime, res TimeRes) ledger.CloseTime {
	switch res {
	case TimeSeconds:
		return t
	case TimeMinutes:
		return t - t%60
	case TimeHours:
		return t - t%3600
	case TimeDays:
		return t - t%86400
	default:
		return 0
	}
}

// Features are the observable fields of one payment, plus the sender
// ground truth the attacker wants to recover.
type Features struct {
	Sender      addr.AccountID
	Destination addr.AccountID
	Currency    amount.Currency
	Amount      amount.Value
	Time        ledger.CloseTime
}

// FromTransaction extracts features from a successful payment, reporting
// ok=false for non-payments and failed transactions (which never
// delivered and so were never observable at a point of sale).
func FromTransaction(p *ledger.Page, tx *ledger.Tx, meta *ledger.TxMeta) (Features, bool) {
	if tx.Type != ledger.TxPayment || !meta.Result.Succeeded() {
		return Features{}, false
	}
	return Features{
		Sender:      tx.Account,
		Destination: tx.Destination,
		Currency:    tx.Amount.Currency,
		Amount:      tx.Amount.Value,
		Time:        p.Header.CloseTime,
	}, true
}

// Fingerprint is the 64-bit digest of a payment's resolved features.
// Hashing (FNV-1a) keeps the uniqueness-counting maps compact at
// multi-million-payment scale; at 23M payments the 64-bit collision
// probability is ~1e-5.
type Fingerprint uint64

// FingerprintOf computes the fingerprint of the observation under the
// resolution. It allocates nothing; studies that fingerprint one payment
// under many resolutions should go through EncodeFeatures instead, which
// rounds and serializes each feature once.
func FingerprintOf(f Features, res Resolution) Fingerprint {
	h := fnvOffset64
	if res.Amount != AmountOff {
		var chunk [amtChunkLen]byte
		encodeAmount(&chunk, RoundAmount(f.Amount, f.Currency, res.Amount))
		h = fnvBytes(h, chunk[:])
	}
	if res.Time != TimeOff {
		var chunk [timeChunkLen]byte
		chunk[0] = 'T'
		binary.BigEndian.PutUint64(chunk[1:], uint64(CoarsenTime(f.Time, res.Time)))
		h = fnvBytes(h, chunk[:])
	}
	if res.Currency {
		var chunk [curChunkLen]byte
		chunk[0] = 'C'
		copy(chunk[1:], f.Currency[:])
		h = fnvBytes(h, chunk[:])
	}
	if res.Destination {
		var chunk [dstChunkLen]byte
		chunk[0] = 'D'
		copy(chunk[1:], f.Destination[:])
		h = fnvBytes(h, chunk[:])
	}
	return Fingerprint(h)
}

// Figure3Rows are the ten resolution tuples of the paper's Figure 3, in
// presentation order. The paper's ⟨Ah,Tmn,C,D⟩ row uses an amount level
// between max and average that Table I does not define; following the
// table, it is evaluated at the max level (see EXPERIMENTS.md).
var Figure3Rows = []Resolution{
	{Amount: AmountMax, Time: TimeSeconds, Currency: true, Destination: true},
	{Amount: AmountMax, Time: TimeSeconds, Currency: false, Destination: true},
	{Amount: AmountMax, Time: TimeSeconds, Currency: true, Destination: false},
	{Amount: AmountOff, Time: TimeSeconds, Currency: true, Destination: true},
	{Amount: AmountMax, Time: TimeMinutes, Currency: true, Destination: true},
	{Amount: AmountAvg, Time: TimeHours, Currency: true, Destination: true},
	{Amount: AmountLow, Time: TimeDays, Currency: true, Destination: true},
	{Amount: AmountMax, Time: TimeOff, Currency: true, Destination: true},
	{Amount: AmountMax, Time: TimeOff, Currency: false, Destination: false},
	{Amount: AmountLow, Time: TimeDays, Currency: false, Destination: false},
}

// Study streams payments once and computes, for each requested
// resolution, the information gain: "the percentage of Ripple
// transactions whose sender address field S can be uniquely identified."
type Study struct {
	resolutions []Resolution
	plan        *FingerprintPlan
	counts      []map[Fingerprint]uint32
	payments    int
	fps         []Fingerprint // per-payment scratch
}

// NewStudy prepares a study over the given resolutions.
func NewStudy(resolutions []Resolution) *Study {
	s := &Study{
		resolutions: resolutions,
		plan:        NewFingerprintPlan(resolutions),
		fps:         make([]Fingerprint, 0, len(resolutions)),
	}
	for range resolutions {
		s.counts = append(s.counts, make(map[Fingerprint]uint32))
	}
	return s
}

// Observe folds one payment into every resolution's fingerprint counts.
// The features are encoded once and fingerprinted for all resolutions in
// one planned pass over the shared encoding.
func (s *Study) Observe(f Features) {
	s.payments++
	enc := EncodeFeatures(f)
	s.fps = enc.AppendFingerprints(s.plan, s.fps[:0])
	for i := range s.resolutions {
		s.counts[i][s.fps[i]]++
	}
}

// Payments returns the number of observations folded in.
func (s *Study) Payments() int { return s.payments }

// RowResult is one bar of Figure 3.
type RowResult struct {
	Resolution Resolution
	// IG is the information gain: the fraction of payments with a
	// unique fingerprint, in [0, 1].
	IG float64
	// Unique and Total give the raw counts behind IG.
	Unique, Total int
}

// Results computes the IG for every resolution.
func (s *Study) Results() []RowResult {
	out := make([]RowResult, 0, len(s.resolutions))
	for i, res := range s.resolutions {
		unique := 0
		for _, c := range s.counts[i] {
			if c == 1 {
				unique++
			}
		}
		ig := 0.0
		if s.payments > 0 {
			ig = float64(unique) / float64(s.payments)
		}
		out = append(out, RowResult{Resolution: res, IG: ig, Unique: unique, Total: s.payments})
	}
	return out
}

// FeatureImportance quantifies each feature's isolated and marginal
// contribution to de-anonymization, substantiating the paper's claim
// that "T's information gain not only is higher than A's, but is also
// the highest among all the features."
type FeatureImportance struct {
	Feature string
	// Alone is the IG of a fingerprint containing only this feature at
	// full resolution.
	Alone float64
	// Dropped is the IG of the full fingerprint without this feature;
	// the gap to the full-fingerprint IG is the feature's marginal
	// value.
	Dropped float64
}

// importanceRows builds the 9 resolutions needed: full, 4 alone, 4
// dropped.
func importanceRows() []Resolution {
	full := Resolution{Amount: AmountMax, Time: TimeSeconds, Currency: true, Destination: true}
	return []Resolution{
		full,
		{Amount: AmountMax}, // A alone
		{Time: TimeSeconds}, // T alone
		{Currency: true},    // C alone
		{Destination: true}, // D alone
		{Time: TimeSeconds, Currency: true, Destination: true},    // drop A
		{Amount: AmountMax, Currency: true, Destination: true},    // drop T
		{Amount: AmountMax, Time: TimeSeconds, Destination: true}, // drop C
		{Amount: AmountMax, Time: TimeSeconds, Currency: true},    // drop D
	}
}

// FingerprintStudy is the contract shared by the sequential Study and
// the sharded ParallelStudy: fold payments in with Observe, then read
// the per-resolution information gain with Results.
type FingerprintStudy interface {
	Observe(Features)
	Payments() int
	Results() []RowResult
}

// ImportanceStudy computes per-feature importance over one stream of
// payments. Use Observe to feed it and Results to read it.
type ImportanceStudy struct {
	study FingerprintStudy
}

// NewImportanceStudy prepares the 9-resolution study.
func NewImportanceStudy() *ImportanceStudy {
	return &ImportanceStudy{study: NewStudy(importanceRows())}
}

// NewImportanceStudyParallel is NewImportanceStudy backed by a sharded
// ParallelStudy with 1<<shardBits counting shards. Feed it through
// Observe (single producer) or by attaching Feeders to Parallel().
func NewImportanceStudyParallel(shardBits int) *ImportanceStudy {
	return &ImportanceStudy{study: NewParallelStudy(importanceRows(), shardBits)}
}

// Parallel returns the underlying ParallelStudy when the importance
// study was built with NewImportanceStudyParallel, else nil.
func (s *ImportanceStudy) Parallel() *ParallelStudy {
	ps, _ := s.study.(*ParallelStudy)
	return ps
}

// Observe folds one payment in.
func (s *ImportanceStudy) Observe(f Features) { s.study.Observe(f) }

// Close releases a parallel-backed importance study's count tables to
// the package pool (see ParallelStudy.Close); it is a no-op for the
// map-backed sequential form. Call after the last Results read.
func (s *ImportanceStudy) Close() {
	if ps := s.Parallel(); ps != nil {
		ps.Close()
	}
}

// FullIG returns the full-fingerprint information gain.
func (s *ImportanceStudy) FullIG() float64 { return s.study.Results()[0].IG }

// Results returns the per-feature breakdown, strongest first by marginal
// value (full-IG − dropped-IG).
func (s *ImportanceStudy) Results() []FeatureImportance {
	rows := s.study.Results()
	names := []string{"amount", "timestamp", "currency", "destination"}
	out := make([]FeatureImportance, 0, 4)
	for i, name := range names {
		out = append(out, FeatureImportance{
			Feature: name,
			Alone:   rows[1+i].IG,
			Dropped: rows[5+i].IG,
		})
	}
	full := rows[0].IG
	sortByMarginal(out, full)
	return out
}

func sortByMarginal(rows []FeatureImportance, full float64) {
	sort.SliceStable(rows, func(i, j int) bool {
		return full-rows[i].Dropped > full-rows[j].Dropped
	})
}

// Index is the attacker's lookup structure for one resolution: from a
// (possibly coarse) observation to the candidate senders. This is what
// Alice builds from the public ledger before overhearing Bob's latte
// purchase.
type Index struct {
	res     Resolution
	senders map[Fingerprint]*candidateSet
}

// candidateSet keeps a fingerprint's candidate senders in first-seen
// order. Small sets dedupe by linear scan; once a fingerprint turns hot
// (e.g. the MTL spam cluster collapsing millions of payments onto a few
// fingerprints) a membership map takes over, keeping Add O(1) instead
// of O(n) per payment — O(n²) over the cluster.
type candidateSet struct {
	list []addr.AccountID
	seen map[addr.AccountID]struct{} // nil until len(list) > candidateScanMax
}

// candidateScanMax is the largest candidate list deduped by linear scan.
const candidateScanMax = 8

func (c *candidateSet) add(s addr.AccountID) {
	if c.seen == nil {
		for _, have := range c.list {
			if have == s {
				return
			}
		}
		c.list = append(c.list, s)
		if len(c.list) > candidateScanMax {
			c.seen = make(map[addr.AccountID]struct{}, 2*len(c.list))
			for _, have := range c.list {
				c.seen[have] = struct{}{}
			}
		}
		return
	}
	if _, ok := c.seen[s]; ok {
		return
	}
	c.seen[s] = struct{}{}
	c.list = append(c.list, s)
}

// NewIndex creates an empty index at the given resolution.
func NewIndex(res Resolution) *Index {
	return &Index{res: res, senders: make(map[Fingerprint]*candidateSet)}
}

// Add indexes one payment.
func (idx *Index) Add(f Features) {
	fp := FingerprintOf(f, idx.res)
	set := idx.senders[fp]
	if set == nil {
		set = &candidateSet{}
		idx.senders[fp] = set
	}
	set.add(f.Sender)
}

// Candidates returns the senders consistent with the observation, in
// first-indexed order. A single candidate is a successful
// de-anonymization; the sender field of the observation is ignored.
func (idx *Index) Candidates(f Features) []addr.AccountID {
	set := idx.senders[FingerprintOf(f, idx.res)]
	if set == nil {
		return nil
	}
	return set.list
}

// Resolution returns the index's resolution.
func (idx *Index) Resolution() Resolution { return idx.res }

// TableISpec renders the Table I rounding specification, one row per
// strength group, for the experiment harness.
func TableISpec() []string {
	type row struct {
		name string
		s    amount.Strength
	}
	rows := []row{
		{"Powerful (BTC, XAG, XAU, XPT)", amount.StrengthPowerful},
		{"Medium (CNY, EUR, USD, AUD, GBP, JPY)", amount.StrengthMedium},
		{"Weak (XRP, CCK, STR, KRW, MTL)", amount.StrengthWeak},
	}
	out := make([]string, 0, len(rows))
	for _, r := range rows {
		base := tableIBase(r.s)
		out = append(out, fmt.Sprintf("%-40s max 10^%-3d avg 10^%-3d low 10^%d",
			r.name, base, base+1, base+2))
	}
	return out
}
