package pathfind

import (
	"testing"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
	"ripplestudy/internal/orderbook"
	"ripplestudy/internal/trustgraph"
)

// line builds a trust chain a0←a1←…←aN so aN can pay a0.
func line(t *testing.T, n int) (*trustgraph.Graph, []addr.AccountID) {
	t.Helper()
	g := trustgraph.New()
	accts := make([]addr.AccountID, n)
	for i := range accts {
		accts[i] = acct(uint64(100 + i))
	}
	for i := 0; i+1 < len(accts); i++ {
		if err := g.SetTrust(accts[i], accts[i+1], amount.USD, val("1000")); err != nil {
			t.Fatal(err)
		}
	}
	return g, accts
}

// TestFindPaymentSteadyStateAllocs pins the tentpole contract: after a
// warm-up search sizes the Finder's scratch workspace, repeated trust
// routing allocates only the returned Plan — the BFS itself (visited,
// parent, frontier, overlay) allocates nothing.
func TestFindPaymentSteadyStateAllocs(t *testing.T) {
	g, accts := line(t, 12)
	f := New(g, orderbook.New())
	src, dst := accts[len(accts)-1], accts[0]
	if _, err := f.FindPayment(src, dst, amount.USD, usd("5")); err != nil {
		t.Fatal(err) // warm-up
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := f.FindPayment(src, dst, amount.USD, usd("5")); err != nil {
			t.Fatal(err)
		}
	})
	// The Plan struct, its flow slice, and its path slice are the
	// caller's result and necessarily fresh; everything else must come
	// from the workspace.
	const planAllocs = 3
	if allocs > planAllocs {
		t.Errorf("FindPayment allocates %.1f per call, want ≤ %d (plan only)", allocs, planAllocs)
	}
}

// TestReadSetRecordsTrustSearch pins read-set capture for the
// optimistic replay validator: the endpoints and every account whose
// edges the BFS expanded must be present.
func TestReadSetRecordsTrustSearch(t *testing.T) {
	g, accts := line(t, 5)
	f := New(g, orderbook.New(), WithRecording())
	src, dst := accts[4], accts[0]
	if _, err := f.FindPayment(src, dst, amount.USD, usd("5")); err != nil {
		t.Fatal(err)
	}
	var rs ReadSet
	f.AppendReadSet(&rs)
	have := make(map[addr.AccountID]bool, len(rs.Accounts))
	for _, a := range rs.Accounts {
		have[a] = true
	}
	// The path crosses every chain account; all of them were either
	// expanded or are endpoints.
	for i, a := range accts {
		if !have[a] {
			t.Errorf("read set missing chain account %d", i)
		}
	}
	if len(rs.Pairs) != 0 {
		t.Errorf("pure trust search read %d book pairs, want 0", len(rs.Pairs))
	}
}

// TestReadSetRecordsFailedSearch pins that a PathDry search still
// certifies its reads — including endpoints not present in the graph
// and the (empty) book pairs probed for a bridge.
func TestReadSetRecordsFailedSearch(t *testing.T) {
	g, accts := line(t, 3)
	f := New(g, orderbook.New(), WithRecording())
	ghost := acct(999) // never interned
	if _, err := f.FindPayment(accts[2], ghost, amount.USD, usd("5")); err == nil {
		t.Fatal("payment to an unknown account found a path")
	}
	var rs ReadSet
	f.AppendReadSet(&rs)
	found := false
	for _, a := range rs.Accounts {
		if a == ghost {
			found = true
		}
	}
	if !found {
		t.Error("read set missing the absent destination — a later TrustSet creating it would not invalidate the PathDry verdict")
	}

	// Cross-currency search with empty books must record the probed
	// pairs, so a later offer placement invalidates the plan.
	if _, err := f.FindPayment(accts[2], accts[0], amount.EUR, usd("5")); err == nil {
		t.Fatal("cross-currency payment with no books found a path")
	}
	rs.Reset()
	f.AppendReadSet(&rs)
	wantPairs := map[orderbook.Pair]bool{
		{Pays: amount.EUR, Gets: amount.USD}: false,
		{Pays: amount.XRP, Gets: amount.USD}: false,
	}
	for _, p := range rs.Pairs {
		if _, ok := wantPairs[p]; ok {
			wantPairs[p] = true
		}
	}
	for p, seen := range wantPairs {
		if !seen {
			t.Errorf("read set missing probed empty book %s", p)
		}
	}
}

// TestReadSetResetBetweenSearches pins that consecutive searches don't
// leak reads into each other.
func TestReadSetResetBetweenSearches(t *testing.T) {
	g, accts := line(t, 6)
	f := New(g, orderbook.New(), WithRecording())
	if _, err := f.FindPayment(accts[5], accts[0], amount.USD, usd("5")); err != nil {
		t.Fatal(err)
	}
	// A direct one-hop search afterwards must not still list the whole
	// chain.
	if _, err := f.FindPayment(accts[1], accts[0], amount.USD, usd("5")); err != nil {
		t.Fatal(err)
	}
	var rs ReadSet
	f.AppendReadSet(&rs)
	for _, a := range rs.Accounts {
		if a == accts[5] {
			t.Error("read set leaked the previous search's source")
		}
	}
}
