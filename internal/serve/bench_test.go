package serve

import (
	"net/http/httptest"
	"testing"

	"ripplestudy/internal/deanon"
	"ripplestudy/internal/ledger"
)

// benchService returns a warm service with a small history ingested,
// plus a feature vector from a real payment for lookup benchmarks.
func benchService(b *testing.B) (*Service, []*ledger.Page, deanon.Features) {
	b.Helper()
	pages := genPages(b, 3000, 37)
	s := NewService(Options{})
	b.Cleanup(s.Close)
	for _, p := range pages {
		if err := s.IngestPage(p); err != nil {
			b.Fatal(err)
		}
	}
	drain(b, s)
	for _, p := range pages {
		for i := range p.Txs {
			if f, ok := deanon.FromTransaction(p, p.Txs[i], p.Metas[i]); ok {
				return s, pages, f
			}
		}
	}
	b.Fatal("no observable payment")
	return nil, nil, deanon.Features{}
}

// BenchmarkServeIngestPage measures the full ingest fan-out: offer to
// every page view, applied and periodically published by the workers.
func BenchmarkServeIngestPage(b *testing.B) {
	pages := genPages(b, 3000, 37)
	s := NewService(Options{})
	b.Cleanup(s.Close)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.IngestPage(pages[i%len(pages)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	drain(b, s)
}

// BenchmarkServeLookup measures the O(1) point query against a sealed
// snapshot — the latency a /v1/deanon/lookup request pays after parsing.
func BenchmarkServeLookup(b *testing.B) {
	s, _, feat := benchService(b)
	snap := s.Fingerprints()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := snap.Lookup(i%len(snap.Rows), feat); !ok {
			b.Fatal("lookup rejected")
		}
	}
}

// BenchmarkServeHTTPValidators measures a cached snapshot endpoint
// end-to-end through the handler (admission, cache, write).
func BenchmarkServeHTTPValidators(b *testing.B) {
	s, _, _ := benchService(b)
	h := s.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/validators", nil))
		if rec.Code != 200 {
			b.Fatalf("status %d", rec.Code)
		}
	}
}

// BenchmarkServeSnapshotPublish measures one copy-on-publish seal of the
// fingerprint view — the cost amortized across PublishBatch updates.
func BenchmarkServeSnapshotPublish(b *testing.B) {
	pages := genPages(b, 3000, 37)
	st := newFingerprintState()
	for _, p := range pages {
		st.apply(p)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if snap := st.snapshot(uint64(i), 1); snap == nil {
			b.Fatal("nil snapshot")
		}
	}
}
