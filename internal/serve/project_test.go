package serve

import (
	"reflect"
	"strings"
	"testing"

	"ripplestudy/internal/deanon"
)

// TestProjectPayloadMatchesPage pins the in-place payload projection
// (ledger.TxIter, no *ledger.Page materialized) to the decoded-page
// projection: for every synthetic page the two must produce identical
// records — payments, hops, fingerprints, offer owners, failure counts.
func TestProjectPayloadMatchesPage(t *testing.T) {
	pages := genPages(t, 1500, 17)
	plan := deanon.NewFingerprintPlan(deanon.Figure3Rows)
	pr := newProjector(plan)

	var buf []byte
	sawFailed, sawOffers := false, false
	for _, p := range pages {
		fromPage := new(pageRecord)
		pr.fromPage(p, fromPage)

		buf = p.Encode(buf[:0])
		fromPayload := new(pageRecord)
		if err := pr.fromPayload(buf, fromPayload); err != nil {
			t.Fatalf("page %d: fromPayload: %v", p.Header.Sequence, err)
		}

		if fromPage.seq != fromPayload.seq || fromPage.time != fromPayload.time {
			t.Fatalf("page %d: header fields diverge", p.Header.Sequence)
		}
		if !reflect.DeepEqual(fromPage.payments, fromPayload.payments) {
			t.Fatalf("page %d: payment slabs diverge", p.Header.Sequence)
		}
		if !reflect.DeepEqual(fromPage.hops, fromPayload.hops) {
			t.Fatalf("page %d: hop slabs diverge", p.Header.Sequence)
		}
		if !reflect.DeepEqual(fromPage.fps, fromPayload.fps) {
			t.Fatalf("page %d: fingerprint slabs diverge", p.Header.Sequence)
		}
		if !reflect.DeepEqual(fromPage.offerOwners, fromPayload.offerOwners) {
			t.Fatalf("page %d: offer owners diverge", p.Header.Sequence)
		}
		if fromPage.failed != fromPayload.failed {
			t.Fatalf("page %d: failed counts diverge: %d != %d", p.Header.Sequence, fromPage.failed, fromPayload.failed)
		}
		sawFailed = sawFailed || fromPage.failed > 0
		sawOffers = sawOffers || len(fromPage.offerOwners) > 0
	}
	// The differential is vacuous if the synth history never exercises
	// the non-payment branches.
	if !sawFailed {
		t.Error("no page with failed payments in the test history")
	}
	if !sawOffers {
		t.Error("no page with successful offers in the test history")
	}
}

// TestProjectPayloadRejectsMalformed checks the payload walk validates
// framing like the full decoder: garbage and trailing bytes must error,
// not silently project.
func TestProjectPayloadRejectsMalformed(t *testing.T) {
	pages := genPages(t, 50, 19)
	plan := deanon.NewFingerprintPlan(deanon.Figure3Rows)
	pr := newProjector(plan)
	buf := pages[0].Encode(nil)

	if err := pr.fromPayload([]byte{0xde, 0xad}, new(pageRecord)); err == nil {
		t.Error("garbage payload projected without error")
	}
	if err := pr.fromPayload(buf[:len(buf)-1], new(pageRecord)); err == nil {
		t.Error("truncated payload projected without error")
	}
	trailing := append(append([]byte(nil), buf...), 0x00)
	err := pr.fromPayload(trailing, new(pageRecord))
	if err == nil {
		t.Fatal("payload with trailing bytes projected without error")
	}
	if !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing-byte error = %q, want mention of trailing bytes", err)
	}
}
