package synth

import (
	"fmt"
	"math/rand"
	"time"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
	"ripplestudy/internal/ledger"
	"ripplestudy/internal/payment"
)

// Config parameterizes a synthetic history.
type Config struct {
	// Payments is the target number of payment transactions (the paper's
	// full scale is 23M; analyses default to a few hundred thousand).
	Payments int
	// Seed makes the history reproducible.
	Seed int64
	// Start anchors the history (the paper's window opens at the system
	// genesis, January 2013).
	Start time.Time
	// TxRate is payments per simulated second. The paper's 23M payments
	// over ~33 months average ≈0.27/s — the density that makes
	// second-resolution timestamps nearly unique.
	TxRate float64
	// Users and MarketMakers set population sizes; zero derives them
	// from Payments.
	Users, MarketMakers int
	// OffersPerPayment scales OfferCreate traffic relative to payments
	// (the paper saw ~90M offers alongside 23M payments; the default 0.5
	// keeps runtimes sane while preserving concentration).
	OffersPerPayment float64
	// SkipSignatures disables transaction signing for throughput.
	// Signatures are exercised end-to-end by the consensus and stream
	// paths; histories for statistical analyses don't need them.
	SkipSignatures bool
	// CloseInterval is the simulated ledger close cadence.
	CloseInterval time.Duration
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Payments == 0 {
		c.Payments = 100_000
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2013, 1, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.TxRate == 0 {
		c.TxRate = 0.27
	}
	if c.Users == 0 {
		c.Users = c.Payments / 70
		if c.Users < 300 {
			c.Users = 300
		}
		if c.Users > 165_000 {
			c.Users = 165_000
		}
	}
	if c.MarketMakers == 0 {
		c.MarketMakers = 150
	}
	if c.OffersPerPayment == 0 {
		c.OffersPerPayment = 0.5
	}
	if c.CloseInterval == 0 {
		c.CloseInterval = 5 * time.Second
	}
	return c
}

// Stats summarizes a generated history for calibration checks.
type Stats struct {
	Pages          int
	Transactions   int
	PaymentsOK     int
	PaymentsFailed int
	Offers         int
	TrustSets      int
	CrossCurrency  int
	ByCurrency     map[amount.Currency]int // successful payments per currency
}

// Result carries the generator's outputs: the final engine state (the
// "snapshot" analyses like Table II and Fig. 7 start from) and the
// population with its registry.
type Result struct {
	Engine     *payment.Engine
	Population *Population
	Stats      Stats
	LastHash   ledger.Hash
	LastSeq    uint64
}

// generator holds the run state.
type generator struct {
	cfg Config
	rng *rand.Rand
	eng *payment.Engine
	pop *Population

	now      time.Time
	seq      uint64
	prevHash ledger.Hash

	pageTxs   []*ledger.Tx
	pageMetas []*ledger.TxMeta

	sink func(*ledger.Page) error

	stats Stats

	// workload state
	mix            []currencyShare
	spamForward    bool
	zeroForward    bool
	cckForward     bool
	mtlCount       int
	organicModel   map[amount.Currency]amountModel
	linesByCur     map[amount.Currency][]userLineRef
	merchantsByCur map[amount.Currency][]int
	mmCumWeights   []float64
	standingOffers []offerRef
}

// offerRef tracks a standing offer for later cancellation traffic.
type offerRef struct {
	owner *addr.KeyPair
	seq   uint32
}

// Generate builds a synthetic history, streaming each closed page to
// sink (which may persist it to a ledgerstore or analyze it on the fly).
func Generate(cfg Config, sink func(*ledger.Page) error) (*Result, error) {
	cfg = cfg.withDefaults()
	g := &generator{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		eng:  payment.NewEngine(),
		now:  cfg.Start,
		sink: sink,
		mix:  paymentMix(),
	}
	g.stats.ByCurrency = make(map[amount.Currency]int)
	g.pop = BuildPopulation(g.rng, cfg.Users, cfg.MarketMakers)
	g.organicModel = buildAmountModels()

	genesis := ledger.Genesis("main", ledger.CloseTimeFromTime(cfg.Start))
	g.prevHash = genesis.Header.Hash()
	g.seq = 1
	if err := g.sink(genesis); err != nil {
		return nil, err
	}
	g.stats.Pages++

	if err := g.setup(); err != nil {
		return nil, fmt.Errorf("synth: setup: %w", err)
	}
	if err := g.workload(); err != nil {
		return nil, fmt.Errorf("synth: workload: %w", err)
	}
	if err := g.closePage(); err != nil { // flush the final partial page
		return nil, err
	}
	return &Result{
		Engine:     g.eng,
		Population: g.pop,
		Stats:      g.stats,
		LastHash:   g.prevHash,
		LastSeq:    g.seq,
	}, nil
}

// submit builds, (optionally) signs, and applies a transaction, adding
// it to the current page.
func (g *generator) submit(sender *addr.KeyPair, mutate func(*ledger.Tx)) (*ledger.TxMeta, error) {
	tx := &ledger.Tx{
		Account:  sender.AccountID(),
		Sequence: g.eng.NextSequence(sender.AccountID()),
		Fee:      10,
	}
	mutate(tx)
	if !g.cfg.SkipSignatures {
		tx.Sign(sender)
	}
	meta, err := g.eng.Apply(tx)
	if err != nil {
		return nil, err
	}
	g.pageTxs = append(g.pageTxs, tx)
	g.pageMetas = append(g.pageMetas, meta)
	g.stats.Transactions++
	if tx.Type == ledger.TxPayment {
		if meta.Result.Succeeded() {
			g.stats.PaymentsOK++
			g.stats.ByCurrency[tx.Amount.Currency]++
			if meta.CrossCurrency {
				g.stats.CrossCurrency++
			}
		} else {
			g.stats.PaymentsFailed++
		}
	}
	return meta, nil
}

// closePage seals the buffered transactions into a page and streams it.
func (g *generator) closePage() error {
	if len(g.pageTxs) == 0 && g.stats.Pages > 0 {
		// Empty pages still advance the chain in Ripple, but emitting
		// hundreds of thousands of empty pages would only bloat the
		// store; the analyses are insensitive to them.
		return nil
	}
	g.seq++
	page := &ledger.Page{
		Header: ledger.PageHeader{
			Sequence:   g.seq,
			ParentHash: g.prevHash,
			TxSetHash:  ledger.TxSetHash(g.pageTxs),
			StateHash:  g.eng.StateDigest(),
			CloseTime:  ledger.CloseTimeFromTime(g.now),
			TotalDrops: g.eng.TotalDrops(),
		},
		Txs:   g.pageTxs,
		Metas: g.pageMetas,
	}
	g.prevHash = page.Header.Hash()
	g.pageTxs = nil
	g.pageMetas = nil
	g.stats.Pages++
	return g.sink(page)
}

// tick advances simulated time by one close interval and seals the page.
func (g *generator) tick() error {
	if err := g.closePage(); err != nil {
		return err
	}
	g.now = g.now.Add(g.cfg.CloseInterval)
	return nil
}

// fund sends an XRP payment from ACCOUNT_ZERO, activating the account
// and sealing the grant in the ledger. Pages roll every 50 grants.
func (g *generator) fund(dest addr.AccountID, d amount.Drops) error {
	meta, err := g.submitAs(addr.AccountZero, func(tx *ledger.Tx) {
		tx.Type = ledger.TxPayment
		tx.Destination = dest
		tx.Amount = amount.XRPAmount(d)
	})
	if err != nil {
		return err
	}
	if !meta.Result.Succeeded() {
		return fmt.Errorf("synth: funding %s: %s", dest.Short(), meta.Result)
	}
	if g.stats.PaymentsOK%50 == 0 {
		return g.tick()
	}
	return nil
}

// trust issues a TrustSet from truster towards trustee.
func (g *generator) trust(truster *addr.KeyPair, trustee addr.AccountID, cur amount.Currency, limit amount.Value) error {
	meta, err := g.submit(truster, func(tx *ledger.Tx) {
		tx.Type = ledger.TxTrustSet
		tx.LimitPeer = trustee
		tx.Limit = amount.New(cur, limit)
	})
	if err != nil {
		return err
	}
	if !meta.Result.Succeeded() {
		return fmt.Errorf("synth: TrustSet failed: %s", meta.Result)
	}
	g.stats.TrustSets++
	return nil
}

const (
	// Gateways and market makers hold deep XRP reserves: they carry the
	// whale transfers and the XRP legs of bridged payments.
	dropsGateway = 500_000_000 * amount.DropsPerXRP
	dropsMM      = 500_000_000 * amount.DropsPerXRP
	dropsUser    = 100_000 * amount.DropsPerXRP
	dropsInfra   = 100_000 * amount.DropsPerXRP
)

// setup funds the population and builds the trust topology, the
// deposits, and the spam infrastructure; all through real transactions
// sealed into early history pages.
func (g *generator) setup() error {
	// Funding: "After the system is bootstrapped, all the funds in
	// ACCOUNT_ZERO are distributed to the other users." The distribution
	// is made of real XRP payments signed for ACCOUNT_ZERO (its secret
	// key is public), so a replay of the ledger reconstructs every
	// balance.
	if err := g.fund(g.pop.Akhavr.AccountID(), dropsInfra); err != nil {
		return err
	}
	for i := range g.pop.Gateways {
		if err := g.fund(g.pop.Gateways[i].ID, dropsGateway); err != nil {
			return err
		}
	}
	for i := range g.pop.MarketMakers {
		if err := g.fund(g.pop.MarketMakers[i].ID, dropsMM); err != nil {
			return err
		}
	}
	for i := range g.pop.Users {
		if err := g.fund(g.pop.Users[i].ID, dropsUser); err != nil {
			return err
		}
	}
	for _, kp := range []*addr.KeyPair{g.pop.Attacker, g.pop.SpamSink, g.pop.RippleSpin} {
		if err := g.fund(kp.AccountID(), dropsInfra); err != nil {
			return err
		}
	}
	for _, s := range g.pop.CCKSpammers {
		if err := g.fund(s.AccountID(), dropsInfra); err != nil {
			return err
		}
	}
	for c := range g.pop.SpamRelays {
		for h := range g.pop.SpamRelays[c] {
			if err := g.fund(g.pop.SpamRelays[c][h].AccountID(), dropsUser); err != nil {
				return err
			}
		}
	}
	for _, lc := range g.pop.LongChain {
		if err := g.fund(lc.AccountID(), dropsUser); err != nil {
			return err
		}
	}

	// The hubs are "activated" by ~akhavr's first XRP payment, as the
	// paper's ledger investigation found.
	for i := range g.pop.Hubs {
		if _, err := g.submit(g.pop.Akhavr, func(tx *ledger.Tx) {
			tx.Type = ledger.TxPayment
			tx.Destination = g.pop.Hubs[i].ID
			tx.Amount = amount.XRPAmount(10_000 * amount.DropsPerXRP)
		}); err != nil {
			return err
		}
	}
	if err := g.tick(); err != nil {
		return err
	}

	big := amount.MustParse("1e9")

	// Hub topology: the hubs extend deep trust to every gateway (they
	// accept gateway IOUs freely), while gateways extend only a working
	// allowance back. This reproduces Figure 7(b)'s asymmetry: gateways
	// are trusted without declaring much trust themselves, and the
	// hyper-connected non-gateway accounts do the trusting.
	for hi := range g.pop.Hubs {
		hub := g.pop.Hubs[hi]
		for gi := range g.pop.Gateways {
			gw := &g.pop.Gateways[gi]
			for _, cur := range gw.Currencies {
				if err := g.trust(hub.Key, gw.ID, cur, big); err != nil {
					return err
				}
				if err := g.trust(gw.Key, hub.ID, cur, g.organicModel[modelKey(cur)].trustLimit()); err != nil {
					return err
				}
			}
		}
		if err := g.tick(); err != nil {
			return err
		}
	}

	// Market makers likewise: deep trust towards gateways, a working
	// allowance back, so bridged payments can route to and from them.
	for mi := range g.pop.MarketMakers {
		mm := &g.pop.MarketMakers[mi]
		// The heavyweight makers connect to every gateway, the tail to 3.
		nGw := 3
		if mi < 10 {
			nGw = len(g.pop.Gateways)
		}
		perm := g.rng.Perm(len(g.pop.Gateways))
		for _, gi := range perm[:nGw] {
			gw := &g.pop.Gateways[gi]
			for _, cur := range gw.Currencies {
				if err := g.trust(mm.Key, gw.ID, cur, big); err != nil {
					return err
				}
				if err := g.trust(gw.Key, mm.ID, cur, g.organicModel[modelKey(cur)].trustLimit()); err != nil {
					return err
				}
			}
		}
		if mi%10 == 9 {
			if err := g.tick(); err != nil {
				return err
			}
		}
	}

	// Users open trust-lines and receive initial deposits. Each user
	// holds one preferred currency, the same at every host — multiple
	// memberships in one currency are what split payments into the
	// parallel paths of Figure 6(b). Major-currency lines are hosted by
	// a market maker (a point-of-exchange) rather than a gateway with
	// probability mmHostShare; tail currencies stay at gateways. The
	// limit scales with the currency so deposits always fit.
	const mmHostShare = 0.75
	heavyMMs := len(g.pop.MarketMakers)
	if heavyMMs > 40 {
		heavyMMs = 40
	}
	for ui := range g.pop.Users {
		u := &g.pop.Users[ui]
		for _, gi := range u.Gateways {
			gw := &g.pop.Gateways[gi]
			cur := gw.Currencies[ui%len(gw.Currencies)]
			host := gw.Key
			mmHosted := false
			if g.rng.Float64() < mmHostShare {
				mm := &g.pop.MarketMakers[zipfDistinct(g.rng, heavyMMs, 1)[0]]
				host = mm.Key
				mmHosted = true
			}
			if err := g.trust(u.Key, host.AccountID(), cur, g.organicModel[modelKey(cur)].trustLimit()); err != nil {
				return err
			}
			if err := g.depositFrom(host, u, cur); err != nil {
				return err
			}
			u.Lines = append(u.Lines, Line{Host: host, HostID: host.AccountID(), MMHosted: mmHosted, Currency: cur})
		}
		if ui%25 == 24 {
			if err := g.tick(); err != nil {
				return err
			}
		}
	}

	// The MTL spam chains: 6 parallel chains of exactly 8 intermediaries
	// between attacker and sink. Every chain runs through the two hubs
	// and three gateways (attacker → hub1 → gwA → gwB → gwC → hub2 →
	// relay×3 → sink); each link is trusted for exactly the per-path
	// spam quantum, so every spam payment is "forced to be routed
	// through exactly 8 intermediate hops" and splits into "exactly 6
	// parallel paths". The first and last hub links are shared by all
	// chains and carry 6 quanta.
	quantum := amount.MustParse("1e9")
	sixQuanta := amount.MustParse("6e9")
	hub1, hub2 := g.pop.Hubs[0], g.pop.Hubs[1]
	if err := g.trust(hub1.Key, g.pop.Attacker.AccountID(), amount.MTL, sixQuanta); err != nil {
		return err
	}
	for c := range g.pop.SpamRelays {
		// Three distinct gateways per chain.
		gwA := &g.pop.Gateways[(3*c)%len(g.pop.Gateways)]
		gwB := &g.pop.Gateways[(3*c+1)%len(g.pop.Gateways)]
		gwC := &g.pop.Gateways[(3*c+2)%len(g.pop.Gateways)]
		relays := g.pop.SpamRelays[c]
		hops := []struct {
			truster *addr.KeyPair
			trustee addr.AccountID
		}{
			{gwA.Key, hub1.ID},
			{gwB.Key, gwA.ID},
			{gwC.Key, gwB.ID},
			{hub2.Key, gwC.ID},
			{relays[0], hub2.ID},
			{relays[1], relays[0].AccountID()},
			{relays[2], relays[1].AccountID()},
			{g.pop.SpamSink, relays[2].AccountID()},
		}
		for _, h := range hops {
			if err := g.trust(h.truster, h.trustee, amount.MTL, quantum); err != nil {
				return err
			}
		}
	}
	if err := g.tick(); err != nil {
		return err
	}

	// The 44-intermediary oddity of Figure 6(a): one absurdly long MTL
	// trust chain between two dedicated endpoints.
	for i := 0; i+1 < len(g.pop.LongChain); i++ {
		if err := g.trust(g.pop.LongChain[i+1], g.pop.LongChain[i].AccountID(), amount.MTL, quantum); err != nil {
			return err
		}
	}
	if err := g.tick(); err != nil {
		return err
	}

	// CCK spam loops: spammers in a ring with mutual trust.
	cckLimit := amount.MustParse("1e6")
	for i, s := range g.pop.CCKSpammers {
		next := g.pop.CCKSpammers[(i+1)%len(g.pop.CCKSpammers)]
		if err := g.trust(s, next.AccountID(), amount.CCK, cckLimit); err != nil {
			return err
		}
		if err := g.trust(next, s.AccountID(), amount.CCK, cckLimit); err != nil {
			return err
		}
	}
	if err := g.tick(); err != nil {
		return err
	}

	// Guarantee at least one merchant exists so consumer traffic always
	// has a destination.
	hasMerchant := false
	for ui := range g.pop.Users {
		if g.pop.Users[ui].Merchant {
			hasMerchant = true
			break
		}
	}
	if !hasMerchant {
		g.pop.Users[0].Merchant = true
		g.pop.Users[0].Prices = []amount.Value{amount.MustParse("4.5")}
	}
	return nil
}

// depositFrom issues host IOUs to a user: the host "pays" the user,
// getting into debt, exactly as a real-world deposit.
func (g *generator) depositFrom(host *addr.KeyPair, u *User, cur amount.Currency) error {
	v := g.organicModel[modelKey(cur)].deposit(g.rng)
	meta, err := g.submit(host, func(tx *ledger.Tx) {
		tx.Type = ledger.TxPayment
		tx.Destination = u.ID
		tx.Amount = amount.New(cur, v)
	})
	if err != nil {
		return err
	}
	if !meta.Result.Succeeded() {
		return fmt.Errorf("synth: deposit %s to %s failed: %s", cur, u.ID.Short(), meta.Result)
	}
	return nil
}
