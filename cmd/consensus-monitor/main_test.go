package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"ripplestudy/internal/consensus"
	"ripplestudy/internal/netstream"
)

// serveScenario runs a scenario to completion into a netstream server's
// replay ring and returns the server plus the number of events emitted,
// so run() can collect the whole stream from replay and stop at
// max-events.
func serveScenario(t *testing.T, sc consensus.ScenarioConfig, rounds int) (*netstream.Server, int) {
	t.Helper()
	srv, err := netstream.Serve("127.0.0.1:0", netstream.WithReplayRing(1<<15))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	net, traffic := sc.Build()
	net.Subscribe(srv.Publish)
	if _, err := net.Run(rounds, traffic); err != nil {
		t.Fatal(err)
	}
	return srv, int(net.EventsEmitted())
}

// TestRunFlagsAttackAndFlushesReport: collecting an equivocating stream
// must return attacked=true while still writing the full Figure 2 table
// and health report — the poisoned window is flushed before main turns
// the verdict into exit status 2.
func TestRunFlagsAttackAndFlushesReport(t *testing.T) {
	const rounds = 20
	srv, events := serveScenario(t, consensus.ScenarioConfig{
		Name: "attacked", Rounds: rounds, Seed: 3,
		Attack: consensus.AttackSpec{Equivocators: 1},
	}, rounds)

	var stdout, stderr bytes.Buffer
	attacked, err := run(options{
		connect:   srv.Addr(),
		label:     "attacked window",
		maxEvents: events,
		retries:   3,
		stall:     5 * time.Second,
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	if !attacked {
		t.Fatalf("equivocating stream not flagged as attacked\nstdout: %s", stdout.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "ATTACK DETECTED") {
		t.Errorf("health report missing attack verdict:\n%s", out)
	}
	if !strings.Contains(out, "attacked window") || !strings.Contains(out, "summary:") {
		t.Errorf("Figure 2 report not flushed despite the attack:\n%s", out)
	}
	if !strings.Contains(stderr.String(), "ALERT equivocation") {
		t.Errorf("no live equivocation alert on stderr:\n%s", stderr.String())
	}
}

// TestRunBenignStreamNotAttacked: a clean stream reports healthy and
// attacked=false, so -fail-on-attack stays quiet.
func TestRunBenignStreamNotAttacked(t *testing.T) {
	const rounds = 20
	srv, events := serveScenario(t, consensus.ScenarioConfig{
		Name: "benign", Rounds: rounds, Seed: 3,
	}, rounds)

	var stdout, stderr bytes.Buffer
	attacked, err := run(options{
		connect:   srv.Addr(),
		label:     "benign window",
		maxEvents: events,
		retries:   3,
		stall:     5 * time.Second,
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, stderr.String())
	}
	if attacked {
		t.Fatalf("benign stream flagged as attacked\nstdout: %s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "no attack indicators") {
		t.Errorf("health report missing benign verdict:\n%s", stdout.String())
	}
}
