// Command experiments regenerates every table and figure of the paper
// over a synthetic history:
//
//	Figure 2 (a–c)  validator total/valid pages, three collection periods
//	Table I         the amount-rounding specification
//	Figure 3        de-anonymization information gain per resolution
//	Figure 4        most-used currencies
//	Figure 5        survival functions of payment amounts
//	Figure 6 (a,b)  path lengths and parallel paths
//	Table II        delivery without market makers
//	Figure 7 (a–c)  top intermediaries, their trust and balances
//
// Run with -only to regenerate a single experiment (e.g. -only fig3).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"ripplestudy/internal/amount"
	"ripplestudy/internal/consensus"
	"ripplestudy/internal/core"
	"ripplestudy/internal/monitor"
)

func main() {
	payments := flag.Int("payments", 50_000, "synthetic history size (payments)")
	seed := flag.Int64("seed", 1, "random seed")
	rounds := flag.Int("rounds", 2000, "consensus rounds per Figure 2 period")
	storeDir := flag.String("store", "", "persist/reuse the history in this ledgerstore directory")
	only := flag.String("only", "", "run a single experiment: fig2|table1|fig3|fig4|fig5|fig6|table2|fig7|mitigation|incentives|spamcost|overlap|dos|window|attacks")
	workers := flag.Int("workers", 0, "parallel scan/study workers for the de-anonymization pipeline (0 = GOMAXPROCS)")
	ckptEvery := flag.Uint64("checkpoint-every", 0, "write state-tree checkpoints every N pages during store replays (0 = resume only, never write)")
	flag.Parse()

	if err := run(*payments, *seed, *rounds, *storeDir, *only, *workers, *ckptEvery); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(payments int, seed int64, rounds int, storeDir, only string, workers int, ckptEvery uint64) error {
	want := func(name string) bool { return only == "" || only == name }

	if want("fig2") {
		if err := figure2(rounds, seed); err != nil {
			return err
		}
	}
	if want("table1") {
		tableI()
	}

	if want("incentives") {
		incentives()
	}
	if want("overlap") {
		overlap()
	}
	if want("dos") {
		if err := dosExperiment(); err != nil {
			return err
		}
	}
	if want("attacks") {
		if err := attackMatrix(); err != nil {
			return err
		}
	}

	needDataset := only == "" || only == "fig3" || only == "fig4" || only == "fig5" ||
		only == "fig6" || only == "table2" || only == "fig7" ||
		only == "mitigation" || only == "spamcost" || only == "window"
	if !needDataset {
		return nil
	}

	fmt.Printf("\n=== Building synthetic history: %d payments, seed %d ===\n", payments, seed)
	ds, err := buildOrOpen(payments, seed, storeDir)
	if err != nil {
		return err
	}
	ds.SetWorkers(workers)
	ds.SetCheckpointEvery(ckptEvery)
	st, err := ds.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("history: %d pages, %d payments ok (%d failed), %d multi-hop, %d offers, %d active senders\n",
		st.TotalPages, st.Payments, st.Failed, st.MultiHop, st.Offers, st.ActiveUsers)

	if want("fig3") {
		if err := figure3(ds); err != nil {
			return err
		}
	}
	if want("fig4") {
		if err := figure4(ds); err != nil {
			return err
		}
	}
	if want("fig5") {
		if err := figure5(ds); err != nil {
			return err
		}
	}
	if want("fig6") {
		if err := figure6(ds); err != nil {
			return err
		}
	}
	if want("table2") {
		if err := tableII(ds); err != nil {
			return err
		}
	}
	if want("fig7") {
		if err := figure7(ds); err != nil {
			return err
		}
	}
	if want("mitigation") {
		if err := mitigation(ds); err != nil {
			return err
		}
	}
	if want("spamcost") {
		if err := spamCost(ds); err != nil {
			return err
		}
	}
	if want("window") {
		if err := window(ds); err != nil {
			return err
		}
	}
	return nil
}

func window(ds *core.Dataset) error {
	fmt.Println("\n=== Extension: de-anonymization vs observer clock uncertainty ===")
	deltas := []uint32{0, 30, 300, 3600, 43_200, 604_800}
	points, err := ds.ClockUncertainty(deltas)
	if err != nil {
		return err
	}
	labels := []string{"exact", "±30s", "±5min", "±1h", "±12h", "±1week"}
	for i, pt := range points {
		fmt.Printf("%8s %7.2f%%  %s\n", labels[i], 100*pt.UniqueRate,
			strings.Repeat("#", int(pt.UniqueRate*40)))
	}
	fmt.Println("even a bystander with a sloppy clock de-anonymizes most payments;")
	fmt.Println("wide windows approach the sender-level no-timestamp baseline.")
	return nil
}

func buildOrOpen(payments int, seed int64, storeDir string) (*core.Dataset, error) {
	if storeDir != "" {
		if _, err := os.Stat(storeDir); err == nil {
			fmt.Printf("(reusing existing store %s)\n", storeDir)
			return core.OpenDataset(storeDir)
		}
	}
	return core.BuildDataset(core.Config{Payments: payments, Seed: seed, StoreDir: storeDir})
}

// bar renders a log-scaled ASCII bar.
func bar(n, max int64) string {
	if n <= 0 || max <= 0 {
		return ""
	}
	w := int(40 * math.Log10(float64(n)+1) / math.Log10(float64(max)+1))
	return strings.Repeat("#", w)
}

func figure2(rounds int, seed int64) error {
	fmt.Printf("=== Figure 2: validator pages, three 2-week periods (scaled to %d rounds) ===\n", rounds)
	reports, err := core.Figure2(rounds, seed)
	if err != nil {
		return err
	}
	for _, rep := range reports {
		fmt.Println()
		if err := rep.WriteTable(os.Stdout); err != nil {
			return err
		}
		fmt.Printf("summary: %d validators observed, %d active (≥50%% of busiest), %d with zero valid pages\n",
			len(rep.Validators), rep.ActiveCount(0.5), rep.ZeroValidCount())
	}
	return nil
}

func tableI() {
	fmt.Println("\n=== Table I: rounding resolutions per currency-strength group ===")
	for _, row := range core.TableI() {
		fmt.Println("  " + row)
	}
}

func figure3(ds *core.Dataset) error {
	fmt.Println("\n=== Figure 3: information gain (unique-fingerprint fraction) ===")
	rows, err := ds.Figure3()
	if err != nil {
		return err
	}
	for _, r := range rows {
		pct := 100 * r.IG
		fmt.Printf("%-16s %6.2f%%  %s\n", r.Resolution, pct, strings.Repeat("#", int(pct/2.5)))
	}
	return nil
}

func figure4(ds *core.Dataset) error {
	fmt.Println("\n=== Figure 4: most-used currencies (successful payments) ===")
	hist, err := ds.Figure4()
	if err != nil {
		return err
	}
	limit := 20
	if len(hist) < limit {
		limit = len(hist)
	}
	max := hist[0].Payments
	for _, h := range hist[:limit] {
		fmt.Printf("%-4s %9d  %s\n", h.Currency, h.Payments, bar(h.Payments, max))
	}
	if len(hist) > limit {
		fmt.Printf("... and %d more currencies\n", len(hist)-limit)
	}
	return nil
}

func figure5(ds *core.Dataset) error {
	fmt.Println("\n=== Figure 5: survival functions of payment amounts ===")
	curves, err := ds.Figure5()
	if err != nil {
		return err
	}
	// Header: one column per decade.
	fmt.Printf("%-7s", "curve")
	for _, p := range curves[0].Points {
		fmt.Printf(" %6.0e", p.Amount)
	}
	fmt.Println()
	for _, c := range curves {
		fmt.Printf("%-7s", c.Label)
		for _, p := range c.Points {
			fmt.Printf(" %6.3f", p.Fraction)
		}
		fmt.Println()
	}
	return nil
}

func figure6(ds *core.Dataset) error {
	hops, parallel, err := ds.Figure6()
	if err != nil {
		return err
	}
	fmt.Println("\n=== Figure 6(a): payment paths per intermediate-hop count ===")
	printIntHist(hops)
	fmt.Println("\n=== Figure 6(b): payments per parallel-path count ===")
	printIntHist(parallel)
	return nil
}

func printIntHist(h map[int]int64) {
	keys := make([]int, 0, len(h))
	var max int64
	for k, v := range h {
		keys = append(keys, k)
		if v > max {
			max = v
		}
	}
	sort.Ints(keys)
	for _, k := range keys {
		fmt.Printf("%3d %9d  %s\n", k, h[k], bar(h[k], max))
	}
}

func tableII(ds *core.Dataset) error {
	fmt.Println("\n=== Table II: delivery without Market Makers ===")
	res, err := ds.TableII(0.7)
	if err != nil {
		return err
	}
	fmt.Printf("(snapshot at page %d; %d market makers and their offers removed)\n",
		res.SnapshotSeq, res.RemovedMarketMakers)
	fmt.Printf("%-16s %10s %10s %14s\n", "Category", "Submitted", "Delivered", "Delivery rate")
	fmt.Printf("%-16s %10d %10d %13.1f%%\n", "Cross-currency", res.Cross.Submitted, res.Cross.Delivered, 100*res.Cross.Rate())
	fmt.Printf("%-16s %10d %10d %13.1f%%\n", "Single-currency", res.Single.Submitted, res.Single.Delivered, 100*res.Single.Rate())
	total := res.Total()
	fmt.Printf("%-16s %10d %10d %13.1f%%\n", "Total", total.Submitted, total.Delivered, 100*total.Rate())
	if st := res.Stats; st.Workers > 0 {
		planned := st.PlannedAhead + st.Conflicts
		rate := 0.0
		if planned > 0 {
			rate = float64(st.Conflicts) / float64(planned)
		}
		fmt.Printf("(optimistic replay: %d workers, %d batches, %d planned ahead, %d conflicts = %.1f%% re-planned)\n",
			st.Workers, st.Batches, st.PlannedAhead, st.Conflicts, 100*rate)
	}
	return nil
}

func mitigation(ds *core.Dataset) error {
	fmt.Println("\n=== Extension: wallet-splitting countermeasure (§V discussion) ===")
	rows, err := ds.Mitigation([]int{1, 2, 4, 8, 16})
	if err != nil {
		return err
	}
	fmt.Printf("%8s %12s %12s %14s %16s %12s\n",
		"wallets", "unique-rate", "exposure", "extra lines", "reserve (XRP)", "linkable")
	for _, r := range rows {
		fmt.Printf("%8d %11.2f%% %11.2f%% %14d %16.0f %12d\n",
			r.Wallets, 100*r.UniqueRate, 100*r.Exposure,
			r.ExtraTrustLines, r.ExtraReserveXRP, r.LinkableAccounts)
	}
	fmt.Println("splitting caps per-observation damage (~1/k) but never stops the attack,")
	fmt.Println("and the trust-line bootstrap cost grows linearly — the paper's argument.")
	return nil
}

func incentives() {
	fmt.Println("\n=== Extension: validator reward system (§IV proposal) ===")
	for _, sc := range core.Incentives(100) {
		last := sc.Series[len(sc.Series)-1]
		fmt.Printf("%-26s -> %3d validators at equilibrium, quorum fault tolerance %d\n",
			sc.Label, last.Validators, last.FaultTolerance)
	}
	fmt.Println("a transaction tax funds validator entry; without one the population")
	fmt.Println("decays to the subsidized R1-R5 floor the paper worries about.")
}

func overlap() {
	fmt.Println("\n=== Extension: UNL overlap vs fork safety (the [7]/[8] analyses) ===")
	overlaps := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
	fmt.Printf("%8s %10s %10s %14s\n", "overlap", "fork-rate", "stalls", "feasible(80%)")
	for _, res := range consensus.OverlapSweep(30, 0.8, overlaps, 20_000, 1) {
		fmt.Printf("%7.0f%% %9.1f%% %10d %14v\n",
			100*res.Config.Overlap, 100*res.ForkRate, res.StallRounds, res.ForkPossible)
	}
	fmt.Println("with the 80% quorum, UNLs overlapping more than 40% cannot fork —")
	fmt.Println("the safety margin behind \"an increase of the agreement majority\".")
}

func dosExperiment() error {
	fmt.Println("\n=== Extension: validator takedown (§IV's DoS concern) ===")
	fmt.Printf("%10s %18s %18s\n", "taken down", "validated before", "validated after")
	for _, k := range []int{0, 1, 2, 3} {
		net := consensus.NewNetwork(consensus.Config{Seed: 99}, consensus.December2015(0).Specs)
		before := runValidated(net, 200)
		net.DisableTopActives(k)
		after := runValidated(net, 200)
		fmt.Printf("%10d %17.1f%% %17.1f%%\n", k, 100*before, 100*after)
	}
	fmt.Println("with 8 trusted actives and the 80% quorum, losing 2 halts the ledger:")
	fmt.Println("\"a malicious party hijacking or compromising the majority of these")
	fmt.Println(" validators could endanger the whole Ripple system.\"")
	return nil
}

// attackMatrix grades the collection pipeline's detectors against the
// Byzantine scenario engine's ground truth: for every adversary class it
// runs a scenario, feeds the event stream to a monitor collector, and
// compares what actually happened with what the detector flagged. The
// last columns give the SISSLE-style message and modeled-latency cost of
// each attack relative to the benign baseline.
func attackMatrix() error {
	fmt.Println("\n=== Extension: adversarial consensus — attacks vs. the collection pipeline ===")
	const rounds = 100
	cases := []struct {
		name   string
		attack consensus.AttackSpec
	}{
		{"benign baseline", consensus.AttackSpec{}},
		{"1 equivocator", consensus.AttackSpec{Equivocators: 1}},
		{"1 censor", consensus.AttackSpec{Censors: 1}},
		{"1 delayed proposer", consensus.AttackSpec{Delayers: 1}},
		{"3 delayed proposers", consensus.AttackSpec{Delayers: 3}},
		{"overlap 0.2 (sub-bound)", consensus.AttackSpec{Partition: &consensus.PartitionSpec{Overlap: 0.2}}},
		{"overlap 0.8 (safe)", consensus.AttackSpec{Partition: &consensus.PartitionSpec{Overlap: 0.8}}},
	}
	fmt.Printf("%-24s %28s %41s %9s %8s %9s\n",
		"", "ground truth", "detector", "verdict", "msgs/rd", "lat/rd")
	fmt.Printf("%-24s %7s %6s %6s %6s %7s %6s %6s %6s %6s %6s %9s %8s %9s\n",
		"attack", "equiv", "forks", "stalls", "censor",
		"equiv", "forks", "stalls", "censor", "starv", "late", "", "", "")
	for _, tc := range cases {
		col := monitor.NewCollector()
		sc := consensus.ScenarioConfig{
			Name: tc.name, Rounds: rounds, Seed: 5,
			Attack:  tc.attack,
			OnEvent: col.Record,
		}
		res, err := consensus.RunScenario(sc)
		if err != nil {
			return err
		}
		s := col.Detector().Summary()
		verdict := "benign"
		if s.Attacked() {
			verdict = "ATTACK"
		}
		fmt.Printf("%-24s %7d %6d %6d %6d %7d %6d %6d %6d %6d %6d %9s %8.0f %7dms\n",
			tc.name, res.Equivocations, res.ForkRounds, res.StallRounds, res.CensoredRounds,
			s.Equivocations, s.ForkedSequences, s.StallAlarms, s.SuspectedCensoredTxs, s.StarvedTxs, s.LateValidations,
			verdict, res.MeanMsgs, res.MeanLatency.Milliseconds())
	}
	fmt.Println("every adversary class trips a detector, but Figure 2 alone never names the")
	fmt.Println("equivocator: its double-signed pages file it under a benign laggard class —")
	fmt.Println("the gap between the paper's availability census and a safety monitor.")
	fmt.Println("the censor and delayer rows split on the proposal diff: only the censor's")
	fmt.Println("victims count as censored; a delayer's starved traffic is flagged as the")
	fmt.Println("liveness failure it is, not as targeted censorship.")
	return nil
}

func runValidated(net *consensus.Network, rounds int) float64 {
	validated := 0
	for i := 0; i < rounds; i++ {
		res, err := net.RunRound(nil)
		if err != nil {
			return 0
		}
		if res.Validated {
			validated++
		}
	}
	return float64(validated) / float64(rounds)
}

func spamCost(ds *core.Dataset) error {
	fmt.Println("\n=== Extension: what the anti-spam fee charged the spammers ===")
	top, total, err := ds.SpamCost(8)
	if err != nil {
		return err
	}
	fmt.Printf("total fees destroyed: %s drops (%s XRP)\n", amount.FormatDrops(total), total)
	for _, fp := range top {
		fmt.Printf("  %-24s %12d drops (%.1f%%)\n", fp.Name, fp.Fees, 100*fp.Share)
	}
	return nil
}

func figure7(ds *core.Dataset) error {
	fmt.Println("\n=== Figure 7: the 50 most frequent intermediaries ===")
	top, err := ds.Figure7(50)
	if err != nil {
		return err
	}
	conc, err := ds.OfferConcentration()
	if err != nil {
		return err
	}
	fmt.Printf("(offer concentration: top-10 %.0f%%, top-50 %.0f%%, top-100 %.0f%%)\n",
		100*conc[10], 100*conc[50], 100*conc[100])
	fmt.Printf("%-24s %8s %12s %14s %14s %14s\n",
		"account", "gateway", "times-hop", "trust-recv(€)", "trust-given(€)", "balance(€)")
	for _, it := range top {
		gw := ""
		if it.Gateway {
			gw = "yes"
		}
		fmt.Printf("%-24s %8s %12d %14.3g %14.3g %14.3g\n",
			it.Name, gw, it.TimesIntermediate,
			it.Profile.TrustReceived, it.Profile.TrustGiven, it.Profile.NetBalance)
	}
	return nil
}
