package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/consensus"
	"ripplestudy/internal/ledger"
)

// TestConcurrentQueriesDuringIngest hammers every query surface —
// snapshot accessors and the HTTP API — while a consensus stream and a
// page backfill ingest concurrently, then differentially checks the
// final views. Run under -race this is the data-race proof for the
// single-writer/epoch-snapshot design.
func TestConcurrentQueriesDuringIngest(t *testing.T) {
	const rounds = 80
	spec := consensus.December2015(rounds)
	pages := genPages(t, 600, 31)

	s := NewService(Options{PublishBatch: 4, QueueSize: 64})
	defer s.Close()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	stop := make(chan struct{})
	var queries atomic.Uint64
	var wg sync.WaitGroup
	endpoints := []string{"/healthz", "/metrics", "/v1/validators", "/v1/deanon", "/v1/ecosystem", "/v1/deanon/lookup?row=0&amount=5&currency=USD"}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(srv.URL + endpoints[(i+j)%len(endpoints)])
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("query %s: status %d", endpoints[(i+j)%len(endpoints)], resp.StatusCode)
					return
				}
				queries.Add(1)
			}
		}(i)
	}
	// Snapshot accessors race-check the atomic pointers directly; also
	// assert epochs never move backwards.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var lastTally, lastFP, lastEco uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			if e := s.Tally().Epoch; e < lastTally {
				t.Errorf("tally epoch went backwards: %d -> %d", lastTally, e)
				return
			} else {
				lastTally = e
			}
			if e := s.Fingerprints().Epoch; e < lastFP {
				t.Errorf("fingerprint epoch went backwards: %d -> %d", lastFP, e)
				return
			} else {
				lastFP = e
			}
			if e := s.Ecosystem().Epoch; e < lastEco {
				t.Errorf("ecosystem epoch went backwards: %d -> %d", lastEco, e)
				return
			} else {
				lastEco = e
			}
		}
	}()

	// Ingest: a live consensus stream and a page backfill, concurrently.
	var ingest sync.WaitGroup
	ingest.Add(2)
	net := consensus.NewNetwork(consensus.Config{Seed: 5, StartTime: spec.Start, StreamPages: true}, spec.Specs)
	var streamed []*ledger.Page // validated pages only; written from the net.Run goroutine
	net.Subscribe(func(ev consensus.Event) {
		if ev.Kind == consensus.EventLedgerClosed {
			if p, err := ev.Page(); err == nil && p != nil {
				streamed = append(streamed, p)
			}
		}
		if err := s.IngestEvent(ev); err != nil {
			t.Errorf("ingest event: %v", err)
		}
	})
	go func() {
		defer ingest.Done()
		if _, err := net.Run(rounds, nil); err != nil {
			t.Errorf("consensus: %v", err)
		}
	}()
	go func() {
		defer ingest.Done()
		for _, p := range pages {
			if err := s.IngestPage(p); err != nil {
				t.Errorf("ingest page: %v", err)
				return
			}
		}
	}()
	ingest.Wait()
	drain(t, s)
	close(stop)
	wg.Wait()

	if queries.Load() == 0 {
		t.Fatal("no queries completed")
	}

	// Differential check: the final views equal batch over everything
	// that was ingested (backfilled pages + validated streamed pages).
	combined := append([]*ledger.Page(nil), pages...)
	combined = append(combined, streamed...)
	study, col := batchViews(t, combined)
	checkAgainstBatch(t, s, study, col, combined)
}

// TestGracefulCloseFlushesPartialIngest checks Close drains queued
// updates and publishes a final epoch covering everything offered, and
// that queries still work afterwards while further ingest is refused.
func TestGracefulCloseFlushesPartialIngest(t *testing.T) {
	pages := genPages(t, 400, 3)
	s := NewService(Options{PublishBatch: 1 << 20, QueueSize: len(pages) + 8})
	// Huge PublishBatch: nothing publishes until the inbox runs dry or
	// the service closes, so Close itself must flush.
	for _, p := range pages {
		if err := s.IngestPage(p); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	study, col := batchViews(t, pages)
	checkAgainstBatch(t, s, study, col, pages)
	if err := s.IngestPage(pages[0]); err != ErrClosed {
		t.Fatalf("ingest after close: got %v, want ErrClosed", err)
	}
	s.Close() // idempotent
}

// TestDropModeCountsAndDegrades pins the load-shedding path: with a
// blocked worker and a full inbox, offers drop, are counted, and flip
// /healthz to degraded.
func TestDropModeCountsAndDegrades(t *testing.T) {
	release := make(chan struct{})
	first := make(chan struct{})
	var once sync.Once
	w := newViewWorker(viewConfig{name: "test", queue: 1, batch: 1,
		apply: func(int, update) {
			once.Do(func() { close(first) })
			<-release
		},
		publish: func(uint64) {}})
	w.offer(update{}) // worker picks this up and blocks in apply
	<-first
	w.offer(update{}) // fills the 1-slot inbox
	dropped := 0
	for i := 0; i < 8; i++ {
		if !w.offer(update{}) {
			dropped++
		}
	}
	if dropped == 0 {
		t.Fatal("no offers dropped with a blocked worker and full inbox")
	}
	if got := w.dropped.Load(); got != uint64(dropped) {
		t.Fatalf("dropped counter %d, want %d", got, dropped)
	}
	close(release)
	w.close()

	s := NewService(Options{})
	defer s.Close()
	s.views[0].dropped.Add(1) // simulate a shed update
	h := s.Health()
	if h.Status != "degraded" || h.DroppedEvents != 1 {
		t.Fatalf("health = %+v, want degraded with 1 drop", h)
	}
}

// TestAdmissionLimiter pins the 503 shed path: with every slot held and
// a tiny grace period, a query is rejected and counted.
func TestAdmissionLimiter(t *testing.T) {
	s := NewService(Options{MaxConcurrent: 1, AdmitWait: 10 * time.Millisecond})
	defer s.Close()
	s.admit <- struct{}{} // hold the only slot
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/v1/validators", nil)
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
	if s.rejected.Load() != 1 {
		t.Fatalf("rejected counter %d, want 1", s.rejected.Load())
	}
	<-s.admit

	// Slot free again: the same query succeeds.
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/validators", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d after slot freed, want 200", rec.Code)
	}
}

// TestUndecodablePagePayloadQuarantined checks a corrupt page payload
// degrades to a metadata-only close event: the tally still advances,
// the drop is counted, and nothing crashes.
func TestUndecodablePagePayloadQuarantined(t *testing.T) {
	s := NewService(Options{})
	defer s.Close()
	node := addr.KeyPairFromSeed(1).NodeID()
	ev := consensus.Event{
		Kind:       consensus.EventLedgerClosed,
		LedgerHash: [32]byte{1},
		Node:       node,
		Seq:        7,
		PageData:   []byte{0xff, 0xfe, 0xfd},
	}
	if err := s.IngestEvent(ev); err != nil {
		t.Fatal(err)
	}
	drain(t, s)
	h := s.Health()
	if h.DroppedEvents != 1 {
		t.Fatalf("dropped %d, want 1 (undecodable payload)", h.DroppedEvents)
	}
	if s.Tally().Rounds != 1 {
		t.Fatalf("rounds %d, want 1 — the close event itself must survive", s.Tally().Rounds)
	}
	if s.Fingerprints().Payments != 0 {
		t.Fatal("corrupt payload leaked into the fingerprint view")
	}
}

// TestHealthzJSONShape decodes /healthz and spot-checks the wiring.
func TestHealthzJSONShape(t *testing.T) {
	pages := genPages(t, 200, 41)
	s := NewService(Options{})
	defer s.Close()
	for _, p := range pages {
		if err := s.IngestPage(p); err != nil {
			t.Fatal(err)
		}
	}
	drain(t, s)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	var h HealthReport
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.IngestedPages != uint64(len(pages)) || len(h.Views) != 3 {
		t.Fatalf("healthz = %+v", h)
	}
	for _, v := range h.Views[1:] { // page views
		if v.Epoch == 0 || v.AppliedSeq == 0 {
			t.Fatalf("view %s never advanced: %+v", v.Name, v)
		}
	}
}

// drainCtx is a helper variant returning the error for cancellation
// tests.
func drainCtx(s *Service, d time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	return s.Drain(ctx)
}

// TestDrainHonoursContext checks Drain gives up when a view can't catch
// up in time.
func TestDrainHonoursContext(t *testing.T) {
	s := NewService(Options{})
	defer s.Close()
	// Phantom offers that will never be applied: drain cannot finish.
	s.tallyW.offered.Add(5)
	if err := drainCtx(s, 50*time.Millisecond); err == nil {
		t.Fatal("drain returned nil with outstanding offers")
	}
}
