// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON benchmark record, so CI can archive a perf
// trajectory across PRs:
//
//	go test -run '^$' -bench Figure3 -benchmem . | benchjson > BENCH_deanon.json
//
// Each benchmark line becomes an entry keyed by benchmark name with its
// iteration count and every reported metric (ns/op, B/op, allocs/op,
// and custom metrics like payments/s) as a unit→value map.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Entry is one benchmark result line.
type Entry struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Output is the archived document.
type Output struct {
	// Context lines: the goos/goarch/pkg/cpu header go test prints.
	Context    map[string]string `json:"context,omitempty"`
	Benchmarks []Entry           `json:"benchmarks"`
}

func main() {
	out, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*Output, error) {
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	out := &Output{Context: map[string]string{}}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "Benchmark"):
			e, ok := parseBenchLine(line)
			if ok {
				out.Benchmarks = append(out.Benchmarks, e)
			}
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"),
			strings.HasPrefix(line, "cpu:"):
			if k, v, ok := strings.Cut(line, ":"); ok {
				out.Context[k] = strings.TrimSpace(v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines on stdin")
	}
	return out, nil
}

// parseBenchLine parses one result line:
//
//	BenchmarkFigure3/parallel-8  92  12812383 ns/op  1523 B/op  4 allocs/op  936578 payments/s
func parseBenchLine(line string) (Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Entry{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	e := Entry{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Entry{}, false
		}
		e.Metrics[fields[i+1]] = v
	}
	return e, true
}
