// State tree integration: the engine can maintain an authenticated
// Merkle view of its full state (accounts, trust lines, standing
// offers, supply metadata) in an internal/shamap tree. Mutation sites
// journal *which* objects they touched — cheaply, into dirty sets — and
// SealState re-serializes only those objects at the next ledger close,
// so sealing costs O(changed · tree depth) rather than O(state).
//
// The sealed root is a commitment to the state itself (unlike
// StateDigest, which chains the applied history), so two engines with
// equal roots hold byte-identical state regardless of how they got
// there. WriteNewStateNodes emits the nodes new since the previous
// seal, and RestoreEngine rebuilds a working engine from a loaded tree
// — the checkpoint/resume path in internal/replay.
package payment

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
	"ripplestudy/internal/ledger"
	"ripplestudy/internal/orderbook"
	"ripplestudy/internal/pathfind"
	"ripplestudy/internal/shamap"
	"ripplestudy/internal/trustgraph"
)

// ErrNoStateTree reports a state-tree operation on an engine that was
// built without WithStateTree.
var ErrNoStateTree = errors.New("payment: engine has no state tree")

// pairKey identifies a trust line in canonical (lo, hi) order.
type pairKey struct {
	lo, hi addr.AccountID
	cur    amount.Currency
}

// offerRef identifies a standing offer.
type offerRef struct {
	owner addr.AccountID
	seq   uint32
}

// stateJournal is the engine-side mutation journal: dirty sets of
// objects touched since the last seal, plus the tree they serialize
// into.
type stateJournal struct {
	tree   *shamap.Tree
	accts  map[addr.AccountID]struct{}
	pairs  map[pairKey]struct{}
	offers map[offerRef]struct{}
	buf    []byte // leaf scratch; Set copies, so one buffer serves all
}

func newStateJournal(tree *shamap.Tree) *stateJournal {
	return &stateJournal{
		tree:   tree,
		accts:  make(map[addr.AccountID]struct{}),
		pairs:  make(map[pairKey]struct{}),
		offers: make(map[offerRef]struct{}),
	}
}

// WithStateTree makes the engine maintain the authenticated state tree
// from the start.
func WithStateTree() Option {
	return func(e *Engine) { e.EnableStateTree() }
}

// EnableStateTree attaches a fresh state tree and journals every object
// currently in the state, so the first SealState commits a complete
// snapshot.
func (e *Engine) EnableStateTree() {
	e.state = newStateJournal(shamap.New())
	for a := range e.seq {
		e.markAccount(a)
	}
	e.graph.Pairs(func(p *trustgraph.Pair) { e.markPair(p.Lo, p.Hi, p.Currency) })
	e.books.Each(func(o *orderbook.Offer) { e.markOffer(o.Owner, o.Seq) })
}

// HasStateTree reports whether the engine maintains a state tree.
func (e *Engine) HasStateTree() bool { return e.state != nil }

// StateRoot returns the root hash of the last SealState (zero before
// the first seal or without a tree).
func (e *Engine) StateRoot() ledger.Hash {
	if e.state == nil {
		return ledger.Hash{}
	}
	return e.state.tree.Root()
}

func (e *Engine) markAccount(a addr.AccountID) {
	if e.state != nil {
		e.state.accts[a] = struct{}{}
	}
}

func (e *Engine) markPair(a, b addr.AccountID, cur amount.Currency) {
	if e.state != nil {
		if b.Less(a) {
			a, b = b, a
		}
		e.state.pairs[pairKey{lo: a, hi: b, cur: cur}] = struct{}{}
	}
}

func (e *Engine) markOffer(owner addr.AccountID, seq uint32) {
	if e.state != nil {
		e.state.offers[offerRef{owner: owner, seq: seq}] = struct{}{}
	}
}

// SealState re-serializes every journaled object from live state —
// present objects become leaf writes, absent ones leaf deletes — and
// seals the tree, returning the new root. The journal resets.
func (e *Engine) SealState() (ledger.Hash, error) {
	j := e.state
	if j == nil {
		return ledger.Hash{}, ErrNoStateTree
	}
	for a := range j.accts {
		k := accountKey(a)
		if seq, ok := e.seq[a]; ok {
			j.buf = appendAccountLeaf(j.buf[:0], a, e.xrp[a], seq)
			j.tree.Set(k, j.buf)
		} else {
			j.tree.Delete(k)
		}
	}
	clear(j.accts)
	for pk := range j.pairs {
		k := trustKey(pk)
		if p := e.graph.PairOf(pk.lo, pk.hi, pk.cur); p != nil {
			j.buf = appendTrustLeaf(j.buf[:0], p)
			j.tree.Set(k, j.buf)
		} else {
			j.tree.Delete(k)
		}
	}
	clear(j.pairs)
	for or := range j.offers {
		k := offerKey(or.owner, or.seq)
		if o := e.books.Lookup(or.owner, or.seq); o != nil {
			j.buf = appendOfferLeaf(j.buf[:0], o)
			j.tree.Set(k, j.buf)
		} else {
			j.tree.Delete(k)
		}
	}
	clear(j.offers)
	// Supply metadata moves on every fee burn; rewrite it every seal.
	j.buf = appendMetaLeaf(j.buf[:0], e.totalDrops, e.feesDestroyed, e.books.StampCounter())
	j.tree.Set(metaKey, j.buf)
	return j.tree.Seal(), nil
}

// WriteNewStateNodes streams the tree nodes created since the previous
// call (or all nodes on the first) through put — the incremental
// checkpoint batch. The tree must be sealed.
func (e *Engine) WriteNewStateNodes(put func(h ledger.Hash, data []byte) error) (int, error) {
	if e.state == nil {
		return 0, ErrNoStateTree
	}
	return e.state.tree.WriteNew(put)
}

// RestoreScalars carries the engine state a checkpoint persists outside
// the tree: StateDigest chains the applied history and is not derivable
// from state, and the supply counters double-check the tree's meta leaf.
type RestoreScalars struct {
	TotalDrops    uint64
	FeesDestroyed amount.Drops
	StateDigest   ledger.Hash
}

// RestoreEngine rebuilds a working engine from a loaded, sealed state
// tree. Offers are re-placed in placement-stamp order via
// PlaceRestored, and trust pairs enter the graph sorted by the
// adjacency's canonical order, so the restored engine's observable
// behavior — quotes, paths, digests, future seals — is identical to the
// engine that sealed the tree. The engine adopts the tree.
func RestoreEngine(tree *shamap.Tree, sc RestoreScalars, opts ...Option) (*Engine, error) {
	e := &Engine{
		graph: trustgraph.New(),
		books: orderbook.New(),
		xrp:   make(map[addr.AccountID]amount.Drops),
		seq:   make(map[addr.AccountID]uint32),
	}
	type stampedOffer struct {
		o     *orderbook.Offer
		stamp uint64
	}
	var offers []stampedOffer
	var stampCounter uint64
	sawMeta := false
	err := tree.Walk(func(key ledger.Hash, value []byte) error {
		if len(value) == 0 {
			return fmt.Errorf("payment: empty leaf %s", key.Short())
		}
		switch value[0] {
		case leafAccount:
			a, drops, seq, err := decodeAccountLeaf(value)
			if err != nil {
				return err
			}
			if accountKey(a) != key {
				return fmt.Errorf("payment: account leaf keyed %s under %s", accountKey(a).Short(), key.Short())
			}
			e.seq[a] = seq
			if drops != 0 {
				e.xrp[a] = drops
			}
		case leafTrust:
			pk, limLoHi, limHiLo, balance, err := decodeTrustLeaf(value)
			if err != nil {
				return err
			}
			if trustKey(pk) != key {
				return fmt.Errorf("payment: trust leaf keyed %s under %s", trustKey(pk).Short(), key.Short())
			}
			if err := e.graph.RestorePair(pk.lo, pk.hi, pk.cur, limLoHi, limHiLo, balance); err != nil {
				return err
			}
		case leafOffer:
			o, stamp, err := decodeOfferLeaf(value)
			if err != nil {
				return err
			}
			if offerKey(o.Owner, o.Seq) != key {
				return fmt.Errorf("payment: offer leaf keyed %s under %s", offerKey(o.Owner, o.Seq).Short(), key.Short())
			}
			offers = append(offers, stampedOffer{o: o, stamp: stamp})
		case leafMeta:
			totalDrops, feesDestroyed, stamps, err := decodeMetaLeaf(value)
			if err != nil {
				return err
			}
			if totalDrops != sc.TotalDrops || feesDestroyed != sc.FeesDestroyed {
				return fmt.Errorf("payment: meta leaf (%d, %d) disagrees with checkpoint scalars (%d, %d)",
					totalDrops, feesDestroyed, sc.TotalDrops, sc.FeesDestroyed)
			}
			stampCounter = stamps
			sawMeta = true
		default:
			return fmt.Errorf("payment: unknown leaf tag %#x", value[0])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if !sawMeta {
		return nil, fmt.Errorf("payment: state tree has no meta leaf")
	}
	sort.Slice(offers, func(i, j int) bool { return offers[i].stamp < offers[j].stamp })
	for _, so := range offers {
		if err := e.books.PlaceRestored(so.o, so.stamp); err != nil {
			return nil, err
		}
	}
	// Fast-forward past stamps consumed by offers that no longer stand,
	// so placements after the restore stamp identically to the original.
	e.books.RestoreStampCounter(stampCounter)
	e.totalDrops = sc.TotalDrops
	e.feesDestroyed = sc.FeesDestroyed
	e.stateDigest = sc.StateDigest
	e.finder = pathfind.New(e.graph, e.books)
	for _, opt := range opts {
		opt(e)
	}
	// Adopt the tree last: an option may have attached a fresh one.
	e.state = newStateJournal(tree)
	return e, nil
}

// Leaf encoding. Each leaf embeds its own identity (the keys are
// hashes, not reversible), tagged by its first byte:
//
//	account 'a' ‖ id[20] ‖ drops u64 ‖ nextSeq u32
//	trust   't' ‖ lo[20] ‖ hi[20] ‖ cur[3] ‖ limLoHi ‖ limHiLo ‖ balance
//	offer   'o' ‖ owner[20] ‖ seq u32 ‖ stamp u64 ‖ paysCur[3] ‖ paysVal ‖ getsCur[3] ‖ getsVal
//	meta    'm' ‖ totalDrops u64 ‖ feesDestroyed u64 ‖ stampCounter u64
//
// integers big-endian; amount values serialize as
// sign u8 ‖ mantissa u64 ‖ exponent i16 (11 bytes, exact for the
// normalized values the engine produces). Leaf keys are SHA512Half of
// the tag byte plus the identity fields (or "meta").
const (
	leafAccount = 'a'
	leafTrust   = 't'
	leafOffer   = 'o'
	leafMeta    = 'm'

	valueLen       = 11
	accountLeafLen = 1 + 20 + 8 + 4
	trustLeafLen   = 1 + 20 + 20 + 3 + 3*valueLen
	offerLeafLen   = 1 + 20 + 4 + 8 + 3 + valueLen + 3 + valueLen
	metaLeafLen    = 1 + 8 + 8 + 8
)

var metaKey = ledger.SHA512Half([]byte("meta"))

func accountKey(a addr.AccountID) ledger.Hash {
	var b [1 + 20]byte
	b[0] = leafAccount
	copy(b[1:], a[:])
	return ledger.SHA512Half(b[:])
}

func trustKey(pk pairKey) ledger.Hash {
	var b [1 + 20 + 20 + 3]byte
	b[0] = leafTrust
	copy(b[1:], pk.lo[:])
	copy(b[21:], pk.hi[:])
	copy(b[41:], pk.cur[:])
	return ledger.SHA512Half(b[:])
}

func offerKey(owner addr.AccountID, seq uint32) ledger.Hash {
	var b [1 + 20 + 4]byte
	b[0] = leafOffer
	copy(b[1:], owner[:])
	binary.BigEndian.PutUint32(b[21:], seq)
	return ledger.SHA512Half(b[:])
}

func appendValue(dst []byte, v amount.Value) []byte {
	sign := byte(0)
	if v.IsNegative() {
		sign = 1
	}
	dst = append(dst, sign)
	dst = binary.BigEndian.AppendUint64(dst, v.Mantissa())
	return binary.BigEndian.AppendUint16(dst, uint16(int16(v.Exponent())))
}

func decodeValue(b []byte) (amount.Value, error) {
	m := binary.BigEndian.Uint64(b[1:9])
	if m > math.MaxInt64 {
		return amount.Zero, fmt.Errorf("payment: leaf mantissa %d out of range", m)
	}
	exp := int16(binary.BigEndian.Uint16(b[9:11]))
	v, err := amount.NewValue(int64(m), int(exp))
	if err != nil {
		return amount.Zero, fmt.Errorf("payment: leaf value: %w", err)
	}
	if b[0] != 0 {
		v = v.Neg()
	}
	return v, nil
}

func appendAccountLeaf(dst []byte, a addr.AccountID, drops amount.Drops, seq uint32) []byte {
	dst = append(dst, leafAccount)
	dst = append(dst, a[:]...)
	dst = binary.BigEndian.AppendUint64(dst, uint64(drops))
	return binary.BigEndian.AppendUint32(dst, seq)
}

func decodeAccountLeaf(b []byte) (a addr.AccountID, drops amount.Drops, seq uint32, err error) {
	if len(b) != accountLeafLen {
		return a, 0, 0, fmt.Errorf("payment: account leaf of %d bytes", len(b))
	}
	copy(a[:], b[1:21])
	return a, amount.Drops(binary.BigEndian.Uint64(b[21:29])), binary.BigEndian.Uint32(b[29:33]), nil
}

func appendTrustLeaf(dst []byte, p *trustgraph.Pair) []byte {
	dst = append(dst, leafTrust)
	dst = append(dst, p.Lo[:]...)
	dst = append(dst, p.Hi[:]...)
	dst = append(dst, p.Currency[:]...)
	dst = appendValue(dst, p.LimitLoHi)
	dst = appendValue(dst, p.LimitHiLo)
	return appendValue(dst, p.Balance)
}

func decodeTrustLeaf(b []byte) (pk pairKey, limLoHi, limHiLo, balance amount.Value, err error) {
	if len(b) != trustLeafLen {
		return pk, amount.Zero, amount.Zero, amount.Zero, fmt.Errorf("payment: trust leaf of %d bytes", len(b))
	}
	copy(pk.lo[:], b[1:21])
	copy(pk.hi[:], b[21:41])
	copy(pk.cur[:], b[41:44])
	if limLoHi, err = decodeValue(b[44 : 44+valueLen]); err == nil {
		if limHiLo, err = decodeValue(b[44+valueLen : 44+2*valueLen]); err == nil {
			balance, err = decodeValue(b[44+2*valueLen:])
		}
	}
	return pk, limLoHi, limHiLo, balance, err
}

func appendOfferLeaf(dst []byte, o *orderbook.Offer) []byte {
	dst = append(dst, leafOffer)
	dst = append(dst, o.Owner[:]...)
	dst = binary.BigEndian.AppendUint32(dst, o.Seq)
	dst = binary.BigEndian.AppendUint64(dst, o.Stamp())
	dst = append(dst, o.Pays.Currency[:]...)
	dst = appendValue(dst, o.Pays.Value)
	dst = append(dst, o.Gets.Currency[:]...)
	return appendValue(dst, o.Gets.Value)
}

func decodeOfferLeaf(b []byte) (*orderbook.Offer, uint64, error) {
	if len(b) != offerLeafLen {
		return nil, 0, fmt.Errorf("payment: offer leaf of %d bytes", len(b))
	}
	o := &orderbook.Offer{}
	copy(o.Owner[:], b[1:21])
	o.Seq = binary.BigEndian.Uint32(b[21:25])
	stamp := binary.BigEndian.Uint64(b[25:33])
	copy(o.Pays.Currency[:], b[33:36])
	paysVal, err := decodeValue(b[36 : 36+valueLen])
	if err != nil {
		return nil, 0, err
	}
	o.Pays.Value = paysVal
	copy(o.Gets.Currency[:], b[47:50])
	getsVal, err := decodeValue(b[50 : 50+valueLen])
	if err != nil {
		return nil, 0, err
	}
	o.Gets.Value = getsVal
	return o, stamp, nil
}

func appendMetaLeaf(dst []byte, totalDrops uint64, feesDestroyed amount.Drops, stampCounter uint64) []byte {
	dst = append(dst, leafMeta)
	dst = binary.BigEndian.AppendUint64(dst, totalDrops)
	dst = binary.BigEndian.AppendUint64(dst, uint64(feesDestroyed))
	return binary.BigEndian.AppendUint64(dst, stampCounter)
}

func decodeMetaLeaf(b []byte) (totalDrops uint64, feesDestroyed amount.Drops, stampCounter uint64, err error) {
	if len(b) != metaLeafLen {
		return 0, 0, 0, fmt.Errorf("payment: meta leaf of %d bytes", len(b))
	}
	return binary.BigEndian.Uint64(b[1:9]),
		amount.Drops(binary.BigEndian.Uint64(b[9:17])),
		binary.BigEndian.Uint64(b[17:25]), nil
}
