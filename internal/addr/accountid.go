package addr

import (
	"bytes"
	"crypto/sha256"
	"fmt"
)

// AccountID is the 160-bit identifier of a Ripple account. In rippled it
// is RIPEMD160(SHA256(pubkey)); the Go standard library has no RIPEMD160,
// so this implementation uses the first 20 bytes of
// SHA256(SHA256(pubkey)), which preserves the properties the study relies
// on: fixed 160-bit width, uniform pseudo-randomness, and no semantic
// content about the owning entity.
type AccountID [20]byte

// AccountZero is the special account that initially owns all XRP. Its
// secret key is publicly known ("hard-coded in Ripple's protocol
// definition"), which is why the paper observes over 1M spam payments sent
// to it.
var AccountZero AccountID

// AccountIDFromPublicKey derives the account identifier from a public
// signing key.
func AccountIDFromPublicKey(pub []byte) AccountID {
	first := sha256.Sum256(pub)
	second := sha256.Sum256(first[:])
	var id AccountID
	copy(id[:], second[:20])
	return id
}

// ParseAccountID decodes an "r..." address.
func ParseAccountID(s string) (AccountID, error) {
	payload, err := DecodeBase58Check(s, VersionAccountID)
	if err != nil {
		return AccountID{}, err
	}
	if len(payload) != 20 {
		return AccountID{}, fmt.Errorf("addr: account payload is %d bytes, want 20", len(payload))
	}
	var id AccountID
	copy(id[:], payload)
	return id, nil
}

// MustParseAccountID is like ParseAccountID but panics on error.
func MustParseAccountID(s string) AccountID {
	id, err := ParseAccountID(s)
	if err != nil {
		panic(err)
	}
	return id
}

// IsZero reports whether id is AccountZero.
func (id AccountID) IsZero() bool { return id == AccountZero }

// String renders the account in its base58check "r..." form.
func (id AccountID) String() string { return EncodeBase58Check(VersionAccountID, id[:]) }

// Short renders the truncated form used in the paper's figures:
// the first six characters, an ellipsis, and the last six characters.
func (id AccountID) Short() string {
	s := id.String()
	if len(s) <= 15 {
		return s
	}
	return s[:6] + "..." + s[len(s)-6:]
}

// Less provides a stable ordering for deterministic iteration over
// account sets.
func (id AccountID) Less(other AccountID) bool {
	return bytes.Compare(id[:], other[:]) < 0
}

// MarshalText implements encoding.TextMarshaler.
func (id AccountID) MarshalText() ([]byte, error) { return []byte(id.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (id *AccountID) UnmarshalText(text []byte) error {
	parsed, err := ParseAccountID(string(text))
	if err != nil {
		return err
	}
	*id = parsed
	return nil
}

// NodeID is the identifier of a validator, derived from its node public
// key and rendered with the "n..." prefix, as in the paper's Figure 2
// labels (e.g. "n9KDJn...Q7KhQ2").
type NodeID [33]byte

// NodeIDFromPublicKey wraps a 32-byte ed25519 public key into the 33-byte
// node key format (a leading type byte, as rippled uses for its key
// encodings).
func NodeIDFromPublicKey(pub []byte) (NodeID, error) {
	if len(pub) != 32 {
		return NodeID{}, fmt.Errorf("addr: node public key is %d bytes, want 32", len(pub))
	}
	var n NodeID
	// The leading type byte uses rippled's compressed-secp256k1 tag so
	// encoded keys render as "n9..." exactly like the paper's Figure 2
	// labels; the key material itself is ed25519.
	n[0] = 0x02
	copy(n[1:], pub)
	return n, nil
}

// ParseNodeID decodes an "n..." node public key token.
func ParseNodeID(s string) (NodeID, error) {
	payload, err := DecodeBase58Check(s, VersionNodePublic)
	if err != nil {
		return NodeID{}, err
	}
	if len(payload) != 33 {
		return NodeID{}, fmt.Errorf("addr: node payload is %d bytes, want 33", len(payload))
	}
	var n NodeID
	copy(n[:], payload)
	return n, nil
}

// PublicKey returns the raw 32-byte signing key inside the node ID.
func (n NodeID) PublicKey() []byte { return n[1:] }

// String renders the node key in its base58check "n..." form.
func (n NodeID) String() string { return EncodeBase58Check(VersionNodePublic, n[:]) }

// Short renders the truncated "n9KDJn...Q7KhQ2" form used in Figure 2.
func (n NodeID) Short() string {
	s := n.String()
	if len(s) <= 15 {
		return s
	}
	return s[:6] + "..." + s[len(s)-6:]
}

// MarshalText implements encoding.TextMarshaler.
func (n NodeID) MarshalText() ([]byte, error) { return []byte(n.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler.
func (n *NodeID) UnmarshalText(text []byte) error {
	parsed, err := ParseNodeID(string(text))
	if err != nil {
		return err
	}
	*n = parsed
	return nil
}
