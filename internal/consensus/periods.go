package consensus

import (
	"fmt"
	"time"
)

// PeriodSpec describes one of the paper's three 2-week collection
// periods: the validator population active during the window and the
// number of consensus rounds to simulate. Two weeks of 5-second closes
// is ~242k rounds; Rounds scales that down while preserving the
// population structure, so the Figure 2 *shape* (who signs a lot, whose
// pages validate) is unchanged.
type PeriodSpec struct {
	Name   string
	Start  time.Time
	Rounds int
	Specs  []ValidatorSpec
}

// FullPeriodRounds is the unscaled round count of a 2-week period at a
// 5-second close interval.
const FullPeriodRounds = 14 * 24 * 3600 / 5

// seedFor gives stable per-identity seeds so validators that recur
// across periods keep their keys — the paper observes "only 9 (over a
// total of 70 validators seen) that appear in each of them as active
// contributors".
func seedFor(label string, ordinal uint64) uint64 {
	if label == "" {
		return 1_000_000 + ordinal
	}
	h := uint64(14695981039346656037)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	// Distinct machines can share a public label (July 2016 had two
	// bougalis.net validators); the ordinal keeps their keys distinct.
	h ^= ordinal * 0x9e3779b97f4a7c15
	return h
}

// rippleLabs returns the R1–R5 validators: always available, trusted,
// "the ones who contribute the most to the validation process".
func rippleLabs() []ValidatorSpec {
	out := make([]ValidatorSpec, 0, 5)
	for i := 1; i <= 5; i++ {
		out = append(out, ValidatorSpec{
			Label:        rLabel(i),
			Behavior:     BehaviorActive,
			Seed:         seedFor(rLabel(i), 0),
			Availability: 0.995,
			Trusted:      true,
		})
	}
	return out
}

func rLabel(i int) string { return fmt.Sprintf("R%d", i) }

func active(label string, ordinal uint64, avail float64) ValidatorSpec {
	return ValidatorSpec{
		Label: label, Behavior: BehaviorActive,
		Seed: seedFor(label, ordinal), Availability: avail, Trusted: true,
	}
}

func laggard(label string, ordinal uint64, sync float64) ValidatorSpec {
	return ValidatorSpec{
		Label: label, Behavior: BehaviorLaggard,
		Seed: seedFor(label, ordinal), Availability: 0.85, SyncProbability: sync,
	}
}

func forked(label string, ordinal uint64) ValidatorSpec {
	return ValidatorSpec{
		Label: label, Behavior: BehaviorForked,
		Seed: seedFor(label, ordinal), Availability: 0.9,
	}
}

func testnet(ordinal uint64) ValidatorSpec {
	return ValidatorSpec{
		Label: "testnet.ripple.com", Behavior: BehaviorTestnet,
		Seed: 2_000_000 + ordinal, Availability: 0.97,
	}
}

// December2015 reproduces Figure 2(a)'s population: R1–R5 plus 29
// others — "just a handful of 3 of them were actively contributing",
// 5 laggards with "a very small fraction of valid pages", and 21 whose
// pages never validate.
func December2015(rounds int) PeriodSpec {
	specs := rippleLabs()
	// 3 active unidentified contributors (recur in later periods).
	for i := uint64(0); i < 3; i++ {
		specs = append(specs, active("", 100+i, 0.93))
	}
	// A ninth recurring contributor: active but poorly provisioned in
	// December, much stronger in the later periods. It keeps the
	// recurring-actives count across all three periods at the paper's 9
	// without inflating December's "handful of 3" very active ones.
	weakRecurring := active("", 110, 0.25)
	weakRecurring.Trusted = false
	specs = append(specs, weakRecurring)
	// 5 laggards struggling to stay in sync.
	specs = append(specs, laggard("mycooldomain.com", 0, 0.08))
	for i := uint64(0); i < 4; i++ {
		specs = append(specs, laggard("", 200+i, 0.02+0.02*float64(i)))
	}
	// 20 validators with zero valid pages (private forks or hopeless
	// latency).
	specs = append(specs, forked("xagate.com", 0))
	for i := uint64(0); i < 19; i++ {
		specs = append(specs, forked("", 300+i))
	}
	return PeriodSpec{
		Name:   "December 2015",
		Start:  time.Date(2015, 12, 1, 0, 0, 0, 0, time.UTC),
		Rounds: rounds,
		Specs:  specs,
	}
}

// July2016 reproduces Figure 2(b): 10 active non-Ripple validators (four
// with public domains), the 5-node test-net cluster, and a tail of
// laggards and forks.
func July2016(rounds int) PeriodSpec {
	specs := rippleLabs()
	// Publicly-labelled actives: "available as much as R1–R5".
	specs = append(specs,
		active("bougalis.net", 0, 0.99),
		active("bougalis.net", 1, 0.99),
		active("freewallet1.net", 0, 0.97),
		active("freewallet2.net", 0, 0.97),
		active("mduo13.com", 0, 0.95),
		active("youwant.to", 0, 0.95),
	)
	// 4 active unidentified (3 recurring from December, one new).
	for i := uint64(0); i < 3; i++ {
		specs = append(specs, active("", 100+i, 0.93))
	}
	specs = append(specs, active("", 110, 0.9))
	// Test-net cluster: ~200k pages signed, none on the main ledger.
	for i := uint64(0); i < 5; i++ {
		specs = append(specs, testnet(i))
	}
	// Remaining observations: laggards and forks.
	specs = append(specs,
		laggard("rippled.media.mit.edu", 0, 0.05),
		laggard("rippled.mr.exchange", 0, 0.04),
	)
	for i := uint64(0); i < 4; i++ {
		specs = append(specs, laggard("", 210+i, 0.03))
	}
	for i := uint64(0); i < 7; i++ {
		specs = append(specs, forked("", 310+i))
	}
	return PeriodSpec{
		Name:   "July 2016",
		Start:  time.Date(2016, 7, 1, 0, 0, 0, 0, time.UTC),
		Rounds: rounds,
		Specs:  specs,
	}
}

// November2016 reproduces Figure 2(c): more validators observed (34
// non-Ripple) but fewer very active ones (8); freewallet1/2 drop by an
// order of magnitude and one bougalis.net node disappears while the
// other lingers briefly.
func November2016(rounds int) PeriodSpec {
	specs := rippleLabs()
	specs = append(specs,
		active("duke67.com", 0, 0.96),
		active("awsstatic.com/fin-serv", 0, 0.95),
		active("paleorbglow.com", 0, 0.94),
		active("youwant.to", 0, 0.95),
	)
	// 4 active unidentified (keeping the recurring trio and the ninth
	// recurring contributor).
	for i := uint64(0); i < 3; i++ {
		specs = append(specs, active("", 100+i, 0.93))
	}
	specs = append(specs, active("", 110, 0.9))
	// freewallet1/2: an order of magnitude fewer rounds — present only
	// for a sliver of the window.
	fw1 := active("freewallet1.net", 0, 0.97)
	fw1.JoinRound = 1
	fw1.LeaveRound = rounds / 12
	fw2 := active("freewallet2.net", 0, 0.97)
	fw2.JoinRound = 1
	fw2.LeaveRound = rounds / 12
	// bougalis.net: one node gone, the other present ~6% of the window.
	bg := active("bougalis.net", 0, 0.99)
	bg.JoinRound = 1
	bg.LeaveRound = rounds / 16
	specs = append(specs, fw1, fw2, bg)
	// Test-net cluster again.
	for i := uint64(0); i < 5; i++ {
		specs = append(specs, testnet(i))
	}
	// Laggards and forks.
	specs = append(specs,
		laggard("rippled.media.mit.edu", 0, 0.05),
		laggard("rippled.mr.exchange", 0, 0.04),
	)
	for i := uint64(0); i < 7; i++ {
		specs = append(specs, laggard("", 220+i, 0.03))
	}
	for i := uint64(0); i < 9; i++ {
		specs = append(specs, forked("", 320+i))
	}
	return PeriodSpec{
		Name:   "November 2016",
		Start:  time.Date(2016, 11, 1, 0, 0, 0, 0, time.UTC),
		Rounds: rounds,
		Specs:  specs,
	}
}

// Periods returns all three collection periods at the given scale.
func Periods(rounds int) []PeriodSpec {
	return []PeriodSpec{December2015(rounds), July2016(rounds), November2016(rounds)}
}
