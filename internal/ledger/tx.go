package ledger

import (
	"fmt"
	"time"

	"ripplestudy/internal/addr"
	"ripplestudy/internal/amount"
)

// TxType enumerates the transaction types the study's ledger supports,
// the subset of rippled's catalogue the paper's dataset consists of.
type TxType uint8

const (
	// TxPayment moves value: a direct XRP transfer or a rippling IOU
	// payment along trust-lines and order books.
	TxPayment TxType = iota + 1
	// TxOfferCreate places a currency-exchange offer in an order book;
	// the transaction type that makes an account a Market Maker.
	TxOfferCreate
	// TxOfferCancel withdraws a previously placed offer.
	TxOfferCancel
	// TxTrustSet creates or modifies a trust-line: the sender extends
	// credit to a peer, up to a limit, in one currency.
	TxTrustSet
	// TxAccountSet adjusts account flags; included for realism of the
	// workload mix.
	TxAccountSet
)

// String implements fmt.Stringer.
func (t TxType) String() string {
	switch t {
	case TxPayment:
		return "Payment"
	case TxOfferCreate:
		return "OfferCreate"
	case TxOfferCancel:
		return "OfferCancel"
	case TxTrustSet:
		return "TrustSet"
	case TxAccountSet:
		return "AccountSet"
	default:
		return fmt.Sprintf("TxType(%d)", uint8(t))
	}
}

// Issue identifies an issued asset: a currency code plus the account
// whose IOUs denominate it. The zero Issuer with the XRP currency is the
// native asset.
type Issue struct {
	Currency amount.Currency `json:"currency"`
	Issuer   addr.AccountID  `json:"issuer"`
}

// IsXRP reports whether the issue is the native asset.
func (i Issue) IsXRP() bool { return i.Currency.IsXRP() }

// String renders "CUR/rIssuer..." or "XRP".
func (i Issue) String() string {
	if i.IsXRP() {
		return "XRP"
	}
	return i.Currency.String() + "/" + i.Issuer.Short()
}

// Tx is a signed Ripple transaction. A single struct covers all types
// (mirroring rippled's STTx); fields irrelevant to a given type stay at
// their zero values. Which fields each type uses:
//
//   - Payment: Destination, Amount (+DestIssuer), SendMax (+SendIssuer)
//   - OfferCreate: TakerPays/TakerPaysIssuer, TakerGets/TakerGetsIssuer
//   - OfferCancel: OfferSequence
//   - TrustSet: LimitPeer, Limit (the trust limit extended to LimitPeer)
//   - AccountSet: none
type Tx struct {
	Type     TxType         `json:"type"`
	Account  addr.AccountID `json:"account"`  // sender
	Sequence uint32         `json:"sequence"` // per-account sequence number
	Fee      amount.Drops   `json:"fee"`      // XRP destroyed on inclusion

	// Payment fields.
	Destination addr.AccountID `json:"destination,omitempty"`
	Amount      amount.Amount  `json:"amount,omitempty"` // delivered amount
	DestIssuer  addr.AccountID `json:"dest_issuer,omitempty"`
	SendMax     amount.Amount  `json:"send_max,omitempty"` // source-side cap for cross-currency payments
	SendIssuer  addr.AccountID `json:"send_issuer,omitempty"`

	// OfferCreate fields.
	TakerPays       amount.Amount  `json:"taker_pays,omitempty"`
	TakerPaysIssuer addr.AccountID `json:"taker_pays_issuer,omitempty"`
	TakerGets       amount.Amount  `json:"taker_gets,omitempty"`
	TakerGetsIssuer addr.AccountID `json:"taker_gets_issuer,omitempty"`

	// OfferCancel field.
	OfferSequence uint32 `json:"offer_sequence,omitempty"`

	// TrustSet fields.
	LimitPeer addr.AccountID `json:"limit_peer,omitempty"`
	Limit     amount.Amount  `json:"limit,omitempty"`

	// Signature over the canonical signing bytes.
	SigningKey []byte `json:"signing_key,omitempty"`
	Signature  []byte `json:"signature,omitempty"`
}

// Hash returns the transaction's identifying hash: SHA-512-half of the
// canonical serialization including the signature, as in rippled.
func (tx *Tx) Hash() Hash { return SHA512Half(tx.Encode(nil)) }

// Sign signs the transaction with kp and records the signature and
// signing key.
func (tx *Tx) Sign(kp *addr.KeyPair) {
	tx.SigningKey = kp.PublicKey()
	tx.Signature = kp.Sign(tx.signingBytes())
}

// VerifySignature reports whether the transaction carries a valid
// signature and the signing key matches the sending account.
func (tx *Tx) VerifySignature() bool {
	if len(tx.SigningKey) == 0 || len(tx.Signature) == 0 {
		return false
	}
	if addr.AccountIDFromPublicKey(tx.SigningKey) != tx.Account {
		return false
	}
	return addr.Verify(tx.SigningKey, tx.signingBytes(), tx.Signature)
}

// signingBytes is the canonical serialization without the signature.
func (tx *Tx) signingBytes() []byte {
	clone := *tx
	clone.Signature = nil
	clone.SigningKey = nil
	return clone.Encode(nil)
}

// TxResult is the engine result code recorded in transaction metadata,
// a simplified version of rippled's `tes`/`tec` codes.
type TxResult uint8

const (
	// ResultSuccess: the transaction applied and achieved its effect.
	ResultSuccess TxResult = iota + 1
	// ResultPathDry: a payment failed because no path with sufficient
	// liquidity exists (trust exhausted, offers missing).
	ResultPathDry
	// ResultUnfunded: the sender lacks the XRP or IOU balance to pay.
	ResultUnfunded
	// ResultNoDestination: the destination account does not exist.
	ResultNoDestination
	// ResultNoPermission: limit or flag constraints forbid the action.
	ResultNoPermission
	// ResultBadSequence: the per-account sequence number mismatched.
	ResultBadSequence
	// ResultMalformed: the transaction was structurally invalid.
	ResultMalformed
)

// String implements fmt.Stringer using rippled-flavoured names.
func (r TxResult) String() string {
	switch r {
	case ResultSuccess:
		return "tesSUCCESS"
	case ResultPathDry:
		return "tecPATH_DRY"
	case ResultUnfunded:
		return "tecUNFUNDED"
	case ResultNoDestination:
		return "tecNO_DST"
	case ResultNoPermission:
		return "tecNO_PERMISSION"
	case ResultBadSequence:
		return "tefPAST_SEQ"
	case ResultMalformed:
		return "temMALFORMED"
	default:
		return fmt.Sprintf("TxResult(%d)", uint8(r))
	}
}

// Succeeded reports whether the result is tesSUCCESS.
func (r TxResult) Succeeded() bool { return r == ResultSuccess }

// TxMeta is the execution metadata the engine records alongside an
// applied transaction. The appendix analyses (Fig. 6: hops and parallel
// paths; Table II: delivery) read these fields rather than re-deriving
// them.
type TxMeta struct {
	Result TxResult `json:"result"`
	// Delivered is the amount actually delivered to the destination
	// (payments only).
	Delivered amount.Amount `json:"delivered,omitempty"`
	// PathHops holds, for each parallel path the payment used, the
	// number of intermediate hops (accounts between sender and
	// destination). Direct XRP payments record no paths.
	PathHops []uint8 `json:"path_hops,omitempty"`
	// OffersConsumed counts order-book offers fully or partially
	// consumed while executing the payment (cross-currency bridging).
	OffersConsumed uint32 `json:"offers_consumed,omitempty"`
	// CrossCurrency records whether source and delivered currencies
	// differ.
	CrossCurrency bool `json:"cross_currency,omitempty"`
	// Intermediaries lists the accounts the payment crossed between
	// sender and destination — trust-path hops and consumed-offer
	// owners — once per parallel path the account carried. Figure 7(a)
	// ranks accounts by how often they appear here.
	Intermediaries []addr.AccountID `json:"intermediaries,omitempty"`
}

// ParallelPaths returns the number of parallel paths the payment was
// split into.
func (m *TxMeta) ParallelPaths() int { return len(m.PathHops) }

// MaxHops returns the largest intermediate-hop count among the payment's
// paths, the quantity Figure 6(a) histograms.
func (m *TxMeta) MaxHops() int {
	max := 0
	for _, h := range m.PathHops {
		if int(h) > max {
			max = int(h)
		}
	}
	return max
}

// RippleEpoch is the zero of Ripple's on-ledger time scale
// (2000-01-01T00:00:00Z). Close times are stored as seconds since this
// epoch.
var RippleEpoch = time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)

// CloseTime is a ledger close timestamp with second precision, stored as
// seconds since the Ripple epoch.
type CloseTime uint32

// CloseTimeFromTime converts a time.Time.
func CloseTimeFromTime(t time.Time) CloseTime {
	d := t.Unix() - RippleEpoch.Unix()
	if d < 0 {
		return 0
	}
	return CloseTime(d)
}

// Time converts back to a time.Time in UTC.
func (c CloseTime) Time() time.Time { return RippleEpoch.Add(time.Duration(c) * time.Second) }

// String implements fmt.Stringer.
func (c CloseTime) String() string { return c.Time().Format("2006-01-02 15:04:05") }
